package core

import (
	"strings"
	"testing"

	"repro/internal/ir"
	"repro/internal/machine"
)

// lineMachine builds a three-cluster line topology: cluster 0's copy
// unit reaches only cluster 1's file, and cluster 1's only cluster 2's.
// Moving a value from cluster 0 to cluster 2 therefore needs a chain of
// two copy operations — the recursive case of §4.3 step 5 ("the
// scheduler can recursively insert additional copy operations as
// needed").
func lineMachine(t *testing.T) *machine.Machine {
	t.Helper()
	b := machine.NewBuilder("line3")
	rfs := make([]machine.RFID, 3)
	for c := 0; c < 3; c++ {
		rfs[c] = b.AddRF("rf", c, 32)
	}
	// The only load/store unit lives in cluster 0 and the only adder in
	// cluster 2: every load-compute-store chain is forced through the
	// line.
	ls := b.AddFU("ls", machine.LoadStore, 0, 2)
	b.DedicatedRead(rfs[0], ls, 0)
	b.DedicatedRead(rfs[0], ls, 1)
	b.DedicatedWrite(ls, rfs[0])
	add := b.AddFU("add", machine.Adder, 2, 2)
	b.DedicatedRead(rfs[2], add, 0)
	b.DedicatedRead(rfs[2], add, 1)
	b.DedicatedWrite(add, rfs[2])
	// Forward-only copy units: c -> c+1, plus a loop-back 2 -> 0 so the
	// machine is copy-connected in both directions.
	for c := 0; c < 2; c++ {
		cp := b.AddFU("cp", machine.CopyUnit, c, 1)
		b.DedicatedRead(rfs[c], cp, 0)
		b.DedicatedWrite(cp, rfs[c+1])
	}
	cpBack := b.AddFU("cpb", machine.CopyUnit, 2, 1)
	b.DedicatedRead(rfs[2], cpBack, 0)
	b.DedicatedWrite(cpBack, rfs[0])
	m, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestMultiHopCopyChain(t *testing.T) {
	m := lineMachine(t)
	if err := m.CopyConnected(); err != nil {
		t.Fatalf("line machine not copy-connected: %v", err)
	}
	if d := m.CopyDistance(0, 2); d != 2 {
		t.Fatalf("copy distance rf0->rf2 = %d, want 2", d)
	}

	// A value loaded in cluster 0 must be stored by cluster 2's unit.
	b := ir.NewBuilder("hop")
	b.Loop()
	iv, _ := b.InductionVar("i", 0, 1)
	x := b.Emit(ir.Load, "x", iv, b.Const(0))
	y := b.Emit(ir.Add, "y", b.Val(x), b.Const(5))
	b.Emit(ir.Store, "", b.Val(y), iv, b.Const(100))
	k, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	k.TripCount = 6
	s, err := Compile(k, m, Options{})
	if err != nil {
		t.Fatalf("multi-hop kernel does not schedule: %v", err)
	}
	if err := VerifySchedule(s); err != nil {
		t.Fatal(err)
	}
	// At least one value must have traveled through a 2-copy chain:
	// count copies whose source is itself a copy.
	chained := false
	for i := len(k.Ops); i < len(s.Ops); i++ {
		op := s.Ops[i]
		if op.Opcode != ir.Copy {
			continue
		}
		src := op.Args[0].Srcs[0].Value
		if int(s.Values[src].Def) >= len(k.Ops) && s.Ops[s.Values[src].Def].Opcode == ir.Copy {
			chained = true
		}
	}
	if !chained {
		t.Errorf("no two-copy chain found; copies=%d\n%s", s.Stats.CopiesInserted, s.Dump())
	}
	if s.Stats.CopiesInserted < 3 {
		t.Errorf("copies = %d, want >= 3 (two forward hops + store hop back)", s.Stats.CopiesInserted)
	}
	// Run it for real: the oracle must agree with direct interpretation.
	// (The vliwsim property suite covers this broadly; the structural
	// verifier suffices here.)
}

func TestDistanceTwoCarriedValue(t *testing.T) {
	// A value consumed two iterations after its definition (distance 2)
	// exercises the modulo identity arithmetic.
	b := ir.NewBuilder("dist2")
	x0 := b.Emit(ir.MovI, "x0", b.Const(3))
	b.Loop()
	iv, _ := b.InductionVar("i", 0, 1)
	nextID := b.NextValueID()
	// x = phi(x0, x@2) + 1: each iteration reads the value from two
	// iterations back.
	got := b.Emit(ir.Add, "x", ir.PhiOperand(x0, nextID, 2), b.Const(1))
	if got != nextID {
		t.Fatalf("id prediction: %d vs %d", got, nextID)
	}
	b.Emit(ir.Store, "", b.Val(got), iv, b.Const(50))
	k, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	k.TripCount = 7
	for _, m := range allMachines() {
		s, err := Compile(k, m, Options{})
		if err != nil {
			t.Fatalf("%s: %v", m.Name, err)
		}
		if err := VerifySchedule(s); err != nil {
			t.Fatalf("%s: %v", m.Name, err)
		}
	}
}

func TestReservationTableAndUtilization(t *testing.T) {
	k := accLoopKernel(t)
	s, err := Compile(k, machine.Distributed(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	tbl := s.ReservationTable()
	for _, want := range []string{"modulo reservation table", "slot", "buses"} {
		if !strings.Contains(tbl, want) {
			t.Errorf("table missing %q:\n%s", want, tbl)
		}
	}
	util := s.Utilization()
	if util["mem"] <= 0 || util["mul"] <= 0 {
		t.Errorf("utilization missing classes: %v", util)
	}
	for k2, v := range util {
		if v < 0 || v > 1 {
			t.Errorf("utilization %s = %v out of range", k2, v)
		}
	}
	// A loop-less kernel renders the empty-table placeholder.
	km := motivatingKernel(t)
	s2, err := Compile(km, machine.MotivatingExample(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(s2.ReservationTable(), "no loop") {
		t.Error("loop-less table placeholder missing")
	}
}
