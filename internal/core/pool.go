package core

import (
	"context"
	"runtime"
	"sync"
)

// Pool is the bounded worker pool shared by every parallel layer of the
// compiler: CompilePortfolio's (interval, variant) race, the speculative
// initiation-interval ladder (Options.Speculate), and the daemon's
// admission control all draw slots from one Pool, so a process-wide
// parallelism budget holds no matter how the layers nest.
//
// The Pool is a counting semaphore, not a goroutine registry: Acquire
// blocks for a slot, TryAcquire never blocks, and Release returns one.
// The nesting discipline that keeps stacked layers deadlock-free is
// Fan: the calling goroutine always participates as worker 0 without
// consuming a slot (it already holds whatever slot admitted it), and
// extra workers join only when TryAcquire succeeds — an exhausted pool
// degrades every layer to sequential execution instead of wedging it.
type Pool struct {
	sem  chan struct{}
	size int
}

// NewPool returns a pool of n slots; n <= 0 means GOMAXPROCS.
func NewPool(n int) *Pool {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	return &Pool{sem: make(chan struct{}, n), size: n}
}

// Size reports the pool's slot count.
func (p *Pool) Size() int { return p.size }

// Acquire blocks until a slot is free or ctx is done, reporting ctx's
// error in the latter case. Layers that must not stall (nested fan-out)
// use TryAcquire instead.
func (p *Pool) Acquire(ctx context.Context) error {
	select {
	case p.sem <- struct{}{}:
		return nil
	default:
	}
	select {
	case p.sem <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// TryAcquire takes a slot iff one is free.
func (p *Pool) TryAcquire() bool {
	select {
	case p.sem <- struct{}{}:
		return true
	default:
		return false
	}
}

// Release returns a slot taken by Acquire or TryAcquire.
func (p *Pool) Release() { <-p.sem }

// Fan runs fn concurrently on up to n workers and returns when all have
// finished. Worker 0 is always the calling goroutine and needs no pool
// slot; workers 1..n-1 start only if TryAcquire grants them one, so a
// Fan nested under another Fan (or under the daemon's admission) can
// never deadlock — at worst it runs alone on the caller.
func (p *Pool) Fan(n int, fn func(worker int)) {
	var wg sync.WaitGroup
	for w := 1; w < n; w++ {
		if !p.TryAcquire() {
			break
		}
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			defer p.Release()
			fn(w)
		}(w)
	}
	fn(0)
	wg.Wait()
}
