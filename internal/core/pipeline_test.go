package core

import (
	"context"
	"errors"
	"strings"
	"testing"

	"repro/internal/ir"
	"repro/internal/kernels"
	"repro/internal/machine"
)

func TestOptionsValidate(t *testing.T) {
	if err := (Options{}).Validate(); err != nil {
		t.Fatalf("zero options must validate: %v", err)
	}
	if err := (Options{MaxII: 4, PermBudget: 100, ScanWindow: 8, AttemptBudget: 2, MaxCandidates: 5}).Validate(); err != nil {
		t.Fatalf("positive options must validate: %v", err)
	}
	cases := []struct {
		name string
		o    Options
		want string
	}{
		{"MaxII", Options{MaxII: -1}, "MaxII"},
		{"PermBudget", Options{PermBudget: -2}, "PermBudget"},
		{"MaxCandidates", Options{MaxCandidates: -3}, "MaxCandidates"},
		{"ScanWindow", Options{ScanWindow: -4}, "ScanWindow"},
		{"AttemptBudget", Options{AttemptBudget: -5}, "AttemptBudget"},
	}
	for _, c := range cases {
		err := c.o.Validate()
		if err == nil {
			t.Errorf("%s: negative value validated", c.name)
			continue
		}
		var ce *CompileError
		if !errors.As(err, &ce) || ce.Pass != PassOptions {
			t.Errorf("%s: want CompileError in pass %q, got %#v", c.name, PassOptions, err)
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not name the field", c.name, err)
		}
	}
	// Several bad fields are reported together.
	err := Options{MaxII: -1, PermBudget: -1}.Validate()
	if err == nil || !strings.Contains(err.Error(), "MaxII") || !strings.Contains(err.Error(), "PermBudget") {
		t.Errorf("multi-field error incomplete: %v", err)
	}
}

func TestOptionsValidateFor(t *testing.T) {
	for _, m := range []*machine.Machine{machine.Central(), machine.Clustered(4), machine.Distributed()} {
		floor := m.CandidateFloor()
		if err := (Options{}).ValidateFor(m); err != nil {
			t.Errorf("%s: zero options must validate: %v", m.Name, err)
		}
		if err := (Options{MaxCandidates: floor}).ValidateFor(m); err != nil {
			t.Errorf("%s: cap at the floor must validate: %v", m.Name, err)
		}
		err := Options{MaxCandidates: floor - 1}.ValidateFor(m)
		var ce *CompileError
		if !errors.As(err, &ce) || ce.Pass != PassOptions {
			t.Fatalf("%s: sub-floor cap: want options CompileError, got %v", m.Name, err)
		}
		for _, want := range []string{"MaxCandidates", m.Name} {
			if !strings.Contains(err.Error(), want) {
				t.Errorf("%s: error %q does not mention %q", m.Name, err, want)
			}
		}
	}
	// Plain negative values still fail through the machine-aware check.
	if err := (Options{PermBudget: -1}).ValidateFor(machine.Central()); err == nil {
		t.Error("negative budget validated")
	}
	// Compile surfaces the sub-floor cap as a structured error.
	m := machine.Distributed()
	k := kernels.ByName("DCT").MustKernel()
	_, err := Compile(k, m, Options{MaxCandidates: m.CandidateFloor() - 1})
	var ce *CompileError
	if !errors.As(err, &ce) || ce.Pass != PassOptions || ce.Machine != m.Name {
		t.Errorf("Compile sub-floor cap: %v", err)
	}
}

func TestCompileRejectsInvalidOptions(t *testing.T) {
	k := kernels.ByName("DCT").MustKernel()
	_, err := Compile(k, machine.Central(), Options{PermBudget: -1})
	var ce *CompileError
	if !errors.As(err, &ce) {
		t.Fatalf("want CompileError, got %v", err)
	}
	if ce.Pass != PassOptions || ce.Kernel != k.Name || ce.Machine != "central" {
		t.Errorf("fields not filled: %+v", ce)
	}
	if _, _, err := CompilePortfolio(context.Background(), k, machine.Central(), Options{MaxII: -7}, PortfolioOptions{}); err == nil {
		t.Error("portfolio accepted invalid base options")
	}
	_, _, err = CompilePortfolio(context.Background(), k, machine.Central(), Options{}, PortfolioOptions{
		Variants: []Variant{{Name: "bad", Opts: Options{ScanWindow: -1}}},
	})
	if err == nil || !strings.Contains(err.Error(), `variant "bad"`) {
		t.Errorf("portfolio variant validation: %v", err)
	}
}

func TestCheckUnitsStructuredError(t *testing.T) {
	// A multiply on the fig5 machine (adders + load/store only) fails
	// the lower pass with op identity attached.
	b := ir.NewBuilder("nomul")
	x := b.Emit(ir.Mul, "x", b.Const(2), b.Const(3))
	b.Emit(ir.Store, "", b.Val(x), b.Const(9), b.Const(0))
	k := b.MustFinish()
	_, err := Compile(k, machine.MotivatingExample(), Options{})
	var ce *CompileError
	if !errors.As(err, &ce) {
		t.Fatalf("want CompileError, got %v", err)
	}
	if ce.Pass != PassLower || ce.Kernel != "nomul" || ce.Machine != "fig5" || ce.Op != 0 {
		t.Errorf("fields: %+v", ce)
	}
	if !strings.Contains(ce.Error(), "core: no unit") {
		t.Errorf("historical message lost: %q", ce.Error())
	}
}

func TestDoesNotScheduleStructuredError(t *testing.T) {
	k := kernels.ByName("DCT").MustKernel()
	m := machine.Clustered(4)
	_, err := Compile(k, m, Options{MaxII: 1})
	var ce *CompileError
	if !errors.As(err, &ce) {
		t.Fatalf("want CompileError, got %v", err)
	}
	if ce.Kernel != k.Name || ce.Machine != m.Name {
		t.Errorf("identity fields: %+v", ce)
	}
	if !strings.Contains(ce.Error(), "does not schedule") {
		t.Errorf("historical message lost: %q", ce.Error())
	}
	if ce.Pass == PassPlace {
		// The place pass localized the failure to an operation.
		if ce.Op == NoOp {
			t.Error("place failure carries no op")
		}
	} else if ce.Pass != PassLower {
		t.Errorf("unexpected failing pass %q", ce.Pass)
	}
}

func TestInvertedIntervalBounds(t *testing.T) {
	// FIR's recurrence/resource bound on the central machine is above 1,
	// so MaxII: 1 inverts the interval search bounds; the lower pass
	// reports it, keeping the pinned does-not-schedule phrasing.
	k := kernels.ByName("FIR-INT").MustKernel()
	minII := mustResMII(t, k, machine.Central())
	if minII <= 1 {
		t.Skip("FIR minII too small to invert")
	}
	_, err := Compile(k, machine.Central(), Options{MaxII: 1})
	var ce *CompileError
	if !errors.As(err, &ce) {
		t.Fatalf("want CompileError, got %v", err)
	}
	if ce.Pass != PassLower || !strings.Contains(ce.Reason, "inverted interval bounds") {
		t.Errorf("inverted bounds not reported by lower: %+v", ce)
	}
	if !strings.Contains(ce.Error(), "does not schedule") {
		t.Errorf("historical phrasing lost: %q", ce.Error())
	}
}

func mustResMII(t *testing.T, k *ir.Kernel, m *machine.Machine) int {
	t.Helper()
	c := &Compilation{Kernel: k, Machine: m, clock: new(passClock)}
	if err := c.runPass(lowerPass{}); err != nil {
		t.Fatal(err)
	}
	return c.MinII
}

func TestPassStatsPopulated(t *testing.T) {
	k := kernels.ByName("DCT").MustKernel()
	s, err := Compile(k, machine.Distributed(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if s.Passes == nil {
		t.Fatal("Schedule.Passes empty")
	}
	for _, name := range []string{PassLower, PassPrioritize, PassPlace, PassCloseComms, PassRegalloc, PassVerify} {
		st := s.Passes.Get(name)
		if st == nil || st.Runs == 0 {
			t.Errorf("pass %s never ran: %+v", name, st)
			continue
		}
		if st.Wall < 0 {
			t.Errorf("pass %s negative wall %v", name, st.Wall)
		}
	}
	// The preassign pass must not run in the unified configuration.
	if st := s.Passes.Get(PassPreassign); st != nil && st.Runs > 0 {
		t.Errorf("preassign ran without TwoPhase: %+v", st)
	}
	// place steps count placed operations: at least the kernel's ops
	// once per completed attempt.
	if st := s.Passes.Get(PassPlace); st.Steps < len(k.Ops) {
		t.Errorf("place steps %d < %d kernel ops", st.Steps, len(k.Ops))
	}
	// close-comms steps cover at least the winning attempt's routes.
	if st := s.Passes.Get(PassCloseComms); st.Steps < len(s.Routes) {
		t.Errorf("close-comms steps %d < %d routes", st.Steps, len(s.Routes))
	}
	// Canonical order in the rendered table.
	tbl := s.Passes.String()
	if !strings.Contains(tbl, "pass") || !strings.Contains(tbl, "wall") {
		t.Errorf("table header missing:\n%s", tbl)
	}
	if li, pi := strings.Index(tbl, PassLower), strings.Index(tbl, PassPlace); li < 0 || pi < 0 || li > pi {
		t.Errorf("canonical order violated:\n%s", tbl)
	}

	// TwoPhase surfaces the preassign pass.
	s2, err := Compile(k, machine.Distributed(), Options{TwoPhase: true})
	if err != nil {
		t.Fatal(err)
	}
	if st := s2.Passes.Get(PassPreassign); st == nil || st.Runs == 0 {
		t.Error("preassign missing under TwoPhase")
	}
}

func TestRegDemandPopulated(t *testing.T) {
	s, err := Compile(kernels.ByName("FIR-INT").MustKernel(), machine.Distributed(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(s.RegDemand) == 0 {
		t.Fatal("RegDemand empty")
	}
	total := 0
	for rf, d := range s.RegDemand {
		if d <= 0 {
			t.Errorf("rf %d demand %d", rf, d)
		}
		total += d
	}
	// Every route parks its value somewhere: total demand covers at
	// least one register per distinct routed (value, file) residence.
	if total == 0 {
		t.Error("zero total demand")
	}
}

func TestPassStatsMerge(t *testing.T) {
	a := PassStats{{Name: "place", Runs: 1, Steps: 5, Wall: 10}}
	b := PassStats{{Name: "place", Runs: 2, Steps: 7, Fails: 1, Wall: 30}, {Name: "lower", Runs: 1}}
	a.Merge(b)
	if st := a.Get("place"); st.Runs != 3 || st.Steps != 12 || st.Fails != 1 || st.Wall != 40 {
		t.Errorf("merge: %+v", st)
	}
	if a.Get("lower") == nil {
		t.Error("new pass not appended")
	}
	if a.Get("nonexistent") != nil {
		t.Error("Get invented a pass")
	}
}

func TestPipelineConfigRoundTrip(t *testing.T) {
	base := Options{MaxII: 12, PermBudget: 99, ScanWindow: 7}
	for i := 0; i < 16; i++ {
		o := base
		o.CycleOrder = i&1 != 0
		o.TwoPhase = i&2 != 0
		o.NoCostHeuristic = i&4 != 0
		o.RegisterAware = i&8 != 0
		if got := o.Pipeline().Apply(o); got != o {
			t.Errorf("round trip lost fields: %+v -> %+v", o, got)
		}
	}
	pc := Options{CycleOrder: true, TwoPhase: true}.Pipeline()
	if pc.Order != OrderCycle || !pc.Preassign || !pc.CostHeuristic || pc.RegisterAware {
		t.Errorf("Pipeline mapping: %+v", pc)
	}
	want := "prioritize(cycle)→preassign→place[cost]"
	if got := pc.String(); got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

func TestPortfolioPassStats(t *testing.T) {
	k := kernels.ByName("FFT").MustKernel()
	s, stats, err := CompilePortfolio(context.Background(), k, machine.Central(), Options{}, PortfolioOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(stats.Passes) == 0 {
		t.Fatal("PortfolioStats.Passes empty")
	}
	for _, name := range []string{PassLower, PassPrioritize, PassPlace, PassRegalloc, PassVerify} {
		if st := stats.Passes.Get(name); st == nil || st.Runs == 0 {
			t.Errorf("portfolio pass %s never ran", name)
		}
	}
	if len(s.Passes) == 0 || len(s.RegDemand) == 0 {
		t.Error("winner schedule missing pass stats or reg demand")
	}
	for i, v := range stats.Variants {
		if (v.Pipeline == PipelineConfig{}) {
			t.Errorf("variant %d missing pipeline config", i)
		}
	}
}

// TestDiagsInformational checks that a successful compilation carries
// the lower pass's informational diagnostic with interval bounds.
func TestDiagsInformational(t *testing.T) {
	s, err := Compile(kernels.ByName("DCT").MustKernel(), machine.Central(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, d := range s.Diags {
		if d.Pass == PassLower && strings.Contains(d.Msg, "interval search") {
			found = true
		}
	}
	if !found {
		t.Errorf("lower diag missing: %+v", s.Diags)
	}
}
