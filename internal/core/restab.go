package core

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/ir"
	"repro/internal/machine"
)

// ReservationTable renders the loop's modulo reservation table: one row
// per cycle slot (0..II-1), one column per functional unit, plus a bus
// column showing how many of the shared writeback buses each slot uses.
// This is the scheduler-eye view of Fig. 7: unit occupancy and
// interconnect pressure at a glance.
//
//	slot | add0     add1     ... | buses
//	   0 | i        q            | 4/10  ****
func (s *Schedule) ReservationTable() string {
	var b strings.Builder
	if s.II == 0 || len(s.Kernel.Loop) == 0 {
		return "(no loop)\n"
	}

	// Occupancy per (slot, fu).
	type cell struct{ names []string }
	grid := make(map[int]map[machine.FUID]*cell)
	for slot := 0; slot < s.II; slot++ {
		grid[slot] = make(map[machine.FUID]*cell)
	}
	for _, op := range s.Ops {
		if op.Block != ir.LoopBlock {
			continue
		}
		a := s.Assignments[op.ID]
		slot := ((a.Cycle % s.II) + s.II) % s.II
		c := grid[slot][a.FU]
		if c == nil {
			c = &cell{}
			grid[slot][a.FU] = c
		}
		name := op.Name
		if name == "" {
			name = op.Opcode.String()
		}
		if i := strings.IndexByte(name, '('); i > 0 {
			name = name[:i]
		}
		c.names = append(c.names, name)
	}

	// Shared-bus usage per slot: distinct (bus, value-instance) write
	// drives.
	busUse := make(map[int]map[machine.BusID]bool)
	shared := 0
	sharedBuses := make(map[machine.BusID]bool)
	for _, bus := range s.Machine.Buses {
		if bus.Global {
			sharedBuses[bus.ID] = true
		}
	}
	shared = len(sharedBuses)
	for _, r := range s.Routes {
		if s.Ops[r.Def].Block != ir.LoopBlock || !sharedBuses[r.W.Bus] {
			continue
		}
		wflat := s.Assignments[r.Def].Cycle + s.Machine.Latency(s.Ops[r.Def].Opcode) - 1
		slot := ((wflat % s.II) + s.II) % s.II
		if busUse[slot] == nil {
			busUse[slot] = make(map[machine.BusID]bool)
		}
		busUse[slot][r.W.Bus] = true
	}

	// Columns: units that execute anything in the loop.
	var cols []machine.FUID
	for _, fu := range s.Machine.FUs {
		used := false
		for slot := 0; slot < s.II; slot++ {
			if grid[slot][fu.ID] != nil {
				used = true
				break
			}
		}
		if used {
			cols = append(cols, fu.ID)
		}
	}
	sort.Slice(cols, func(i, j int) bool { return cols[i] < cols[j] })

	width := 9
	fmt.Fprintf(&b, "modulo reservation table, II=%d (%s)\n", s.II, s.Machine.Name)
	fmt.Fprintf(&b, "%4s |", "slot")
	for _, fu := range cols {
		fmt.Fprintf(&b, " %-*s", width, s.Machine.FU(fu).Name)
	}
	if shared > 0 {
		fmt.Fprintf(&b, " | buses")
	}
	b.WriteByte('\n')
	for slot := 0; slot < s.II; slot++ {
		fmt.Fprintf(&b, "%4d |", slot)
		for _, fu := range cols {
			txt := ""
			if c := grid[slot][fu]; c != nil {
				txt = strings.Join(c.names, ",")
			}
			if len(txt) > width {
				txt = txt[:width-1] + "…"
			}
			fmt.Fprintf(&b, " %-*s", width, txt)
		}
		if shared > 0 {
			n := len(busUse[slot])
			fmt.Fprintf(&b, " | %2d/%-2d %s", n, shared, strings.Repeat("*", n))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Utilization summarizes how busy each unit class and the shared buses
// are across the loop's II, the occupancy picture behind the paper's
// architecture comparison.
func (s *Schedule) Utilization() map[string]float64 {
	out := make(map[string]float64)
	if s.II == 0 {
		return out
	}
	classIssue := make(map[ir.Class]int)
	classCap := make(map[ir.Class]int)
	for c := ir.Class(1); c < ir.NumClasses; c++ {
		classCap[c] = len(s.Machine.UnitsFor(c)) * s.II
	}
	for _, op := range s.Ops {
		if op.Block != ir.LoopBlock {
			continue
		}
		classIssue[op.Opcode.Class()]++
	}
	for c, n := range classIssue {
		if classCap[c] > 0 {
			out[c.String()] = float64(n) / float64(classCap[c])
		}
	}
	// Shared bus utilization.
	shared := 0
	for _, bus := range s.Machine.Buses {
		if bus.Global {
			shared++
		}
	}
	if shared > 0 {
		drives := make(map[string]bool)
		for _, r := range s.Routes {
			if s.Ops[r.Def].Block != ir.LoopBlock || !s.Machine.Buses[r.W.Bus].Global {
				continue
			}
			wflat := s.Assignments[r.Def].Cycle + s.Machine.Latency(s.Ops[r.Def].Opcode) - 1
			slot := ((wflat % s.II) + s.II) % s.II
			drives[fmt.Sprintf("%d@%d", r.W.Bus, slot)] = true
		}
		out["shared-buses"] = float64(len(drives)) / float64(shared*s.II)
	}
	return out
}
