package core

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/ir"
	"repro/internal/machine"
)

// TimelineEntry is one operation issue in the expanded (flat) view of
// a software-pipelined schedule: the loop overlapped across iterations
// exactly as the hardware executes it.
type TimelineEntry struct {
	Cycle     int // global cycle
	Op        ir.OpID
	Iteration int // -1 for preamble operations
	FU        machine.FUID
}

// Timeline expands the schedule for the given trip count into the flat
// issue sequence: preamble first, then iteration k's operations at
// preambleLen + k·II + cycle. This is the prologue / steady state /
// epilogue structure a code generator for real hardware would emit —
// the first iterations ramp the pipeline up, the middle repeats with
// period II, and the tail drains it.
func (s *Schedule) Timeline(trips int) []TimelineEntry {
	var out []TimelineEntry
	for _, op := range s.Ops {
		a := s.Assignments[op.ID]
		if op.Block == ir.PreambleBlock {
			out = append(out, TimelineEntry{Cycle: a.Cycle, Op: op.ID, Iteration: -1, FU: a.FU})
			continue
		}
		for k := 0; k < trips; k++ {
			out = append(out, TimelineEntry{
				Cycle: s.PreambleLen + k*s.II + a.Cycle, Op: op.ID, Iteration: k, FU: a.FU,
			})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Cycle != out[j].Cycle {
			return out[i].Cycle < out[j].Cycle
		}
		if out[i].FU != out[j].FU {
			return out[i].FU < out[j].FU
		}
		return out[i].Iteration < out[j].Iteration
	})
	return out
}

// PipelineStages returns how many loop iterations are in flight at
// steady state: ceil(span / II), the depth of the software pipeline.
func (s *Schedule) PipelineStages() int {
	if s.II == 0 || s.LoopSpan == 0 {
		return 0
	}
	return (s.LoopSpan + s.II - 1) / s.II
}

// FormatTimeline renders the expanded schedule with the pipeline
// phases annotated:
//
//	=== prologue (pipeline filling) ===
//	cycle   1 | ls0[0] load x | ...
//	=== steady state (II=3, 2 stages) ===
//	...
func (s *Schedule) FormatTimeline(trips int) string {
	entries := s.Timeline(trips)
	stages := s.PipelineStages()
	steadyStart := s.PreambleLen + (stages-1)*s.II
	steadyEnd := s.PreambleLen + trips*s.II // first drain cycle

	var b strings.Builder
	fmt.Fprintf(&b, "expanded schedule: %d trips, II=%d, %d pipeline stage(s)\n",
		trips, s.II, stages)
	phase := ""
	byCycle := make(map[int][]TimelineEntry)
	maxCycle := 0
	for _, e := range entries {
		byCycle[e.Cycle] = append(byCycle[e.Cycle], e)
		if e.Cycle > maxCycle {
			maxCycle = e.Cycle
		}
	}
	for c := 0; c <= maxCycle; c++ {
		es := byCycle[c]
		if len(es) == 0 {
			continue
		}
		var want string
		switch {
		case c < s.PreambleLen:
			want = "preamble"
		case c < steadyStart:
			want = "prologue (pipeline filling)"
		case c < steadyEnd && trips >= stages:
			want = fmt.Sprintf("steady state (one iteration completes every %d cycles)", s.II)
		default:
			want = "epilogue (pipeline draining)"
		}
		if want != phase {
			phase = want
			fmt.Fprintf(&b, "=== %s ===\n", phase)
		}
		cols := make([]string, 0, len(es))
		for _, e := range es {
			op := s.Ops[e.Op]
			name := op.Name
			if name == "" {
				name = op.Opcode.String()
			}
			if i := strings.IndexByte(name, '('); i > 0 {
				name = name[:i]
			}
			iter := "-"
			if e.Iteration >= 0 {
				iter = fmt.Sprintf("%d", e.Iteration)
			}
			cols = append(cols, fmt.Sprintf("%s[%s] %s", s.Machine.FU(e.FU).Name, iter, name))
		}
		fmt.Fprintf(&b, "cycle %4d | %s\n", c, strings.Join(cols, " | "))
	}
	return b.String()
}
