package core

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/ir"
	"repro/internal/machine"
)

// Assignment is the final placement of one operation.
type Assignment struct {
	FU        machine.FUID
	Cycle     int // flat issue cycle within the op's block timeline
	Scheduled bool
}

// Route is the final allocation of one communication: the write stub,
// the read stub, and — for communications that needed copies — the copy
// operations between them (§4.2, Fig. 12). Routes are reported for leaf
// communications: a split communication appears as its two halves, each
// with its own route.
type Route struct {
	Def      ir.OpID
	Use      ir.OpID
	Slot     int
	Value    ir.ValueID
	Distance int
	W        machine.WriteStub
	R        machine.ReadStub
	// Parent is the communication this route descends from when copies
	// were inserted; noComm (-1) for original communications.
	Parent CommID
	ID     CommID
}

// Schedule is the output of Compile: a complete VLIW schedule with all
// interconnect allocated.
type Schedule struct {
	Kernel  *ir.Kernel
	Machine *machine.Machine

	// Ops extends the kernel's operations with inserted copies; Values
	// likewise. Assignments is indexed by op id.
	Ops         []*ir.Op
	Values      []*ir.Value
	Assignments []Assignment

	// II is the loop initiation interval — the paper's performance
	// metric ("speedup was calculated as the inverse of the schedule
	// length of that loop", §5). PreambleLen and LoopSpan are the flat
	// lengths of the two block schedules.
	II          int
	PreambleLen int
	LoopSpan    int

	Routes []Route
	Reads  map[OperandKey]machine.ReadStub

	Stats Stats

	// Passes holds the per-pass instrumentation of the whole
	// compilation (every initiation-interval attempt included), in
	// canonical pipeline order; Diags the informational diagnostics the
	// passes emitted. Neither influences the schedule itself.
	Passes PassStats
	Diags  []Diag

	// RegDemand is the implicit per-file register demand of the
	// schedule (§7): the registers communication scheduling allocated
	// by routing values through each file, computed by the regalloc
	// pass with modulo-variable-expansion accounting.
	RegDemand map[machine.RFID]int

	// Degraded names the degradation-ladder rung that produced this
	// schedule, empty when the primary configuration won (the common
	// case, and always when Options.Degrade is nil).
	Degraded string
}

// buildSchedule freezes the engine state into a Schedule. It panics on
// internal invariant violations (unclosed communications, unplaced
// operations): Compile only calls it after both blocks scheduled.
func (e *engine) buildSchedule() *Schedule {
	s := &Schedule{
		Kernel:      e.kern,
		Machine:     e.mach,
		Ops:         e.ops,
		Values:      e.values,
		Assignments: make([]Assignment, len(e.ops)),
		II:          e.ii,
		Reads:       make(map[OperandKey]machine.ReadStub),
		Stats:       e.stats,
	}
	for i, pl := range e.place {
		if !pl.ok {
			panic(fmt.Sprintf("core: op %s left unscheduled", e.opString(ir.OpID(i))))
		}
		s.Assignments[i] = Assignment{FU: pl.fu, Cycle: pl.cycle, Scheduled: true}
		flat := e.completionFlat(ir.OpID(i)) + 1
		if e.ops[i].Block == ir.LoopBlock {
			if flat > s.LoopSpan {
				s.LoopSpan = flat
			}
		} else if flat > s.PreambleLen {
			s.PreambleLen = flat
		}
	}
	for _, c := range e.comms {
		switch c.state {
		case commSplit:
			continue
		case commClosed:
		default:
			panic(fmt.Sprintf("core: communication v%d %s->%s not closed (%v)",
				c.value, e.opString(c.def), e.opString(c.use), c.state))
		}
		key := OperandKey{Op: c.use, Slot: c.slot}
		or, haveR := e.operandStub[key]
		if !haveR || !c.hasW {
			panic("core: closed communication missing stubs")
		}
		s.Reads[key] = or.stub
		s.Routes = append(s.Routes, Route{
			Def: c.def, Use: c.use, Slot: c.slot, Value: c.value,
			Distance: c.distance, W: c.wstub, R: or.stub,
			Parent: c.parent, ID: c.id,
		})
	}
	sort.Slice(s.Routes, func(i, j int) bool { return s.Routes[i].ID < s.Routes[j].ID })
	return s
}

// CopiesInBlock counts inserted copy operations per block.
func (s *Schedule) CopiesInBlock(b ir.BlockKind) int {
	n := 0
	for i := len(s.Kernel.Ops); i < len(s.Ops); i++ {
		if s.Ops[i].Opcode == ir.Copy && s.Ops[i].Block == b {
			n++
		}
	}
	return n
}

// OpsInBlock returns all scheduled op ids of a block, copies included,
// ordered by cycle then unit.
func (s *Schedule) OpsInBlock(b ir.BlockKind) []ir.OpID {
	var ids []ir.OpID
	for _, op := range s.Ops {
		if op.Block == b {
			ids = append(ids, op.ID)
		}
	}
	sort.Slice(ids, func(i, j int) bool {
		ai, aj := s.Assignments[ids[i]], s.Assignments[ids[j]]
		if ai.Cycle != aj.Cycle {
			return ai.Cycle < aj.Cycle
		}
		return ai.FU < aj.FU
	})
	return ids
}

// Dump renders the schedule as a cycle × functional-unit table per
// block, in the style of Fig. 7, followed by the route listing.
func (s *Schedule) Dump() string {
	var b strings.Builder
	fmt.Fprintf(&b, "schedule %s on %s: II=%d preamble=%d loopspan=%d copies=%d\n",
		s.Kernel.Name, s.Machine.Name, s.II, s.PreambleLen, s.LoopSpan,
		len(s.Ops)-len(s.Kernel.Ops))
	for _, blk := range []ir.BlockKind{ir.PreambleBlock, ir.LoopBlock} {
		ids := s.OpsInBlock(blk)
		if len(ids) == 0 {
			continue
		}
		fmt.Fprintf(&b, "%v:\n", blk)
		for _, id := range ids {
			a := s.Assignments[id]
			op := s.Ops[id]
			name := op.Name
			if name == "" {
				name = fmt.Sprintf("op%d", id)
			}
			fmt.Fprintf(&b, "  cycle %3d  %-6s %-8s %s\n",
				a.Cycle, s.Machine.FU(a.FU).Name, op.Opcode.String(), name)
		}
	}
	fmt.Fprintf(&b, "routes:\n")
	for _, r := range s.Routes {
		fmt.Fprintf(&b, "  v%-3d op%d->op%d.%d  %v  ->  %v\n",
			r.Value, r.Def, r.Use, r.Slot, r.W, r.R)
	}
	return b.String()
}
