package core

import (
	"repro/internal/ir"
	"repro/internal/machine"
)

// This file implements the improvement §7 proposes beyond the paper's
// evaluated system: "an improved form of communication scheduling would
// use an estimate of the number of registers implicitly allocated in
// each register file to influence routing decisions."
//
// With Options.RegisterAware set, the engine tracks, per register file,
// the implicit register demand of every closed route (modulo-variable-
// expansion accounting: a software-pipelined value whose lifetime spans
// L cycles occupies ceil(L/II) registers; loop invariants occupy one
// forever). Route choices that would overflow a file's capacity are
// avoided when any alternative exists — routing pressure away from hot
// files instead of leaving every overflow to the spill post-pass.

// livKey identifies one value's residence in one register file.
type livKey struct {
	value ir.ValueID
	rf    machine.RFID
}

// liveInterval tracks the residence's extent.
type liveInterval struct {
	wflat     int
	lastRead  int
	block     ir.BlockKind
	invariant bool
	regs      int // current register demand
}

// regsOf computes the interval's register demand.
func (e *engine) regsOf(iv liveInterval) int {
	switch {
	case iv.invariant:
		return 1
	case iv.block == ir.LoopBlock && e.ii > 0:
		life := iv.lastRead - iv.wflat
		if life < 1 {
			life = 1
		}
		return (life + e.ii - 1) / e.ii
	default:
		return 1
	}
}

// trackPressure folds a just-closed communication into the per-file
// demand tables, journaled.
func (e *engine) trackPressure(c *comm) {
	if !e.opts.RegisterAware {
		return
	}
	key := livKey{value: c.value, rf: c.wstub.RF}
	old, existed := e.intervals[key]
	iv := old
	if !existed {
		iv = liveInterval{
			wflat:    e.completionFlat(c.def),
			lastRead: e.completionFlat(c.def),
			block:    e.ops[c.def].Block,
		}
	}
	if e.crossBlock(c) {
		iv.invariant = true
	} else {
		read := e.place[c.use].cycle + c.distance*e.blockII(e.ops[c.use].Block)
		if read > iv.lastRead {
			iv.lastRead = read
		}
	}
	iv.regs = e.regsOf(iv)
	delta := iv.regs
	if existed {
		delta -= old.regs
	}
	e.intervals[key] = iv
	e.rfPressure[key.rf] += delta
	e.log(func() {
		if existed {
			e.intervals[key] = old
		} else {
			delete(e.intervals, key)
		}
		e.rfPressure[key.rf] -= delta
	})
}

// pressureAllows reports whether staging communication c's value in rf
// would keep the file within its register capacity. Always true when
// register-aware routing is off; used as a soft filter (callers fall
// back to unfiltered candidates when nothing passes, so scheduling
// still completes and the spill post-pass handles the remainder).
func (e *engine) pressureAllows(c *comm, rf machine.RFID) bool {
	if !e.opts.RegisterAware {
		return true
	}
	cap := e.mach.RegFiles[rf].NumRegs
	cur := e.rfPressure[rf]
	// Project this close's contribution.
	key := livKey{value: c.value, rf: rf}
	iv, existed := e.intervals[key]
	if !existed {
		iv = liveInterval{
			wflat:    e.completionFlat(c.def),
			lastRead: e.completionFlat(c.def),
			block:    e.ops[c.def].Block,
		}
	}
	if e.crossBlock(c) {
		iv.invariant = true
	} else if e.place[c.use].ok {
		read := e.place[c.use].cycle + c.distance*e.blockII(e.ops[c.use].Block)
		if read > iv.lastRead {
			iv.lastRead = read
		}
	}
	delta := e.regsOf(iv)
	if existed {
		delta -= e.intervals[key].regs
	}
	return cur+delta <= cap
}
