package regalloc

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/ir"
	"repro/internal/machine"
)

// pipelineKernel builds a loop whose values live across several
// iterations (long load-to-use distance), inflating register demand.
func pipelineKernel(t *testing.T) *ir.Kernel {
	t.Helper()
	b := ir.NewBuilder("pipe")
	iv, _ := b.InductionVar("i", 0, 1)
	b.Loop()
	x := b.Emit(ir.Load, "x", iv, b.Const(0))
	p := b.Emit(ir.Mul, "p", b.Val(x), b.Const(3))
	q := b.Emit(ir.Mul, "q", b.Val(p), b.Const(5))
	r := b.Emit(ir.Add, "r", b.Val(q), b.Val(x)) // x stays live across both multiplies
	b.Emit(ir.Store, "", b.Val(r), iv, b.Const(0))
	k, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	return k
}

func TestAnalyzeCentral(t *testing.T) {
	k := pipelineKernel(t)
	s, err := core.Compile(k, machine.Central(), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	reports := Analyze(s)
	if len(reports) != 1 {
		t.Fatalf("central has %d reports, want 1", len(reports))
	}
	r := reports[0]
	if r.Demand <= 0 {
		t.Fatal("no register demand computed")
	}
	if r.Overflow() {
		t.Errorf("central 256-register file overflows with demand %d", r.Demand)
	}
	// x is read by the add several cycles after its write; at II=1 it
	// needs multiple registers (modulo variable expansion).
	foundMulti := false
	for _, iv := range r.Intervals {
		if iv.Registers > 1 {
			foundMulti = true
		}
		if iv.LastRead < iv.Write {
			t.Errorf("interval v%d reads before write", iv.Value)
		}
	}
	if s.II == 1 && !foundMulti {
		t.Error("expected a multi-register lifetime at II=1")
	}
	if err := Check(s); err != nil {
		t.Errorf("Check: %v", err)
	}
}

func TestDistributedPressurePlan(t *testing.T) {
	// Communication scheduling ignores register capacity (§7), so a
	// deeply pipelined schedule can overflow the distributed machine's
	// 8-entry files; the post-pass must then produce a valid spill plan
	// into files with headroom.
	k := pipelineKernel(t)
	s, err := core.Compile(k, machine.Distributed(), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := Check(s); err == nil {
		return // fits outright; nothing to plan
	}
	moves, err := Plan(s)
	if err != nil {
		t.Fatalf("planner failed on a small overflow: %v\n%s", err, FormatReport(s))
	}
	if len(moves) == 0 {
		t.Fatal("overflow reported but plan is empty")
	}
	for _, mv := range moves {
		if s.Machine.CopyDistance(mv.From, mv.To) < 0 || s.Machine.CopyDistance(mv.To, mv.From) < 0 {
			t.Errorf("spill target not round-trip reachable: %+v", mv)
		}
	}
}

func TestInvariantAccounting(t *testing.T) {
	b := ir.NewBuilder("inv")
	iv, _ := b.InductionVar("i", 0, 1)
	c1 := b.Emit(ir.MovI, "c1", b.Const(7))
	b.Loop()
	x := b.Emit(ir.Load, "x", iv, b.Const(0))
	p := b.Emit(ir.Mul, "p", b.Val(x), b.Val(c1))
	b.Emit(ir.Store, "", b.Val(p), iv, b.Const(0))
	k, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	s, err := core.Compile(k, machine.Distributed(), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, r := range Analyze(s) {
		for _, ivl := range r.Intervals {
			if ivl.Invariant {
				found = true
				if ivl.Registers != 1 {
					t.Errorf("invariant v%d uses %d registers, want 1", ivl.Value, ivl.Registers)
				}
			}
		}
	}
	if !found {
		t.Error("no invariant interval found for the loop constant")
	}
}

func TestPlanOnTinyFiles(t *testing.T) {
	// Shrink the distributed files to force an overflow and check the
	// planner produces moves (or a clean error when nothing fits).
	k := pipelineKernel(t)
	m := tinyDistributed(2)
	s, err := core.Compile(k, m, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := Check(s); err == nil {
		t.Skip("schedule fits even 2-entry files; nothing to plan")
	}
	moves, err := Plan(s)
	if err != nil {
		t.Logf("planner reports: %v (acceptable when no headroom exists)", err)
		return
	}
	if len(moves) == 0 {
		t.Error("overflow reported but plan is empty")
	}
	for _, mv := range moves {
		if mv.From == mv.To || mv.Freed < 1 {
			t.Errorf("bad move %+v", mv)
		}
		if s.Machine.CopyDistance(mv.From, mv.To) < 0 {
			t.Errorf("move target unreachable: %+v", mv)
		}
	}
}

// tinyDistributed is the distributed machine with tiny register files.
func tinyDistributed(regs int) *machine.Machine {
	b := machine.NewBuilder("tiny-dist")
	buses := make([]machine.BusID, 10)
	for i := range buses {
		buses[i] = b.AddBus("g", true)
	}
	specs := []struct {
		name string
		kind machine.FUKind
	}{
		{"add0", machine.Adder}, {"add1", machine.Adder},
		{"mul0", machine.Multiplier}, {"ls0", machine.LoadStore},
	}
	for _, sp := range specs {
		fu := b.AddFU(sp.name, sp.kind, -1, 2)
		b.SetCanCopy(fu, true)
		for slot := 0; slot < 2; slot++ {
			rf := b.AddRF(sp.name+".rf", -1, regs)
			b.DedicatedRead(rf, fu, slot)
			wp := b.AddWritePort(rf, "w")
			for _, bus := range buses {
				b.ConnectBusWP(bus, wp)
			}
		}
		for _, bus := range buses {
			b.ConnectOutBus(fu, bus)
		}
	}
	return b.MustBuild()
}

func TestFormatReport(t *testing.T) {
	k := pipelineKernel(t)
	s, err := core.Compile(k, machine.Clustered(4), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	out := FormatReport(s)
	if !strings.Contains(out, "register file") || !strings.Contains(out, "rf0") {
		t.Errorf("report malformed:\n%s", out)
	}
}
