package regalloc

import (
	"testing"

	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/vliwsim"
)

// TestRegisterAwareRoutingReducesOverflow exercises §7's proposed
// improvement end to end: on a schedule that overflows the distributed
// machine's 8-entry files under default routing, register-aware
// routing keeps demand within capacity (or at least strictly reduces
// the worst overflow), without breaking correctness.
func TestRegisterAwareRoutingReducesOverflow(t *testing.T) {
	k := pipelineKernel(t)
	m := machine.Distributed()

	base, err := core.Compile(k, m, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	baseWorst := worstOverflow(base)
	if baseWorst == 0 {
		t.Skip("default routing fits; nothing to improve")
	}

	aware, err := core.Compile(k, m, core.Options{RegisterAware: true})
	if err != nil {
		t.Fatalf("register-aware compile: %v", err)
	}
	if err := core.VerifySchedule(aware); err != nil {
		t.Fatal(err)
	}
	awareWorst := worstOverflow(aware)
	t.Logf("worst overflow: default %d registers, register-aware %d (II %d -> %d)",
		baseWorst, awareWorst, base.II, aware.II)
	if awareWorst >= baseWorst {
		t.Errorf("register-aware routing did not reduce overflow: %d -> %d", baseWorst, awareWorst)
	}

	// Correctness: simulate both and compare against the interpreter.
	mem := map[int64]int64{}
	for i := int64(0); i < 16; i++ {
		mem[i] = 3 * i
	}
	k.TripCount = 10
	want, err := vliwsim.Interpret(k, mem, 0)
	if err != nil {
		t.Fatal(err)
	}
	got, err := vliwsim.Run(aware, vliwsim.Config{InitMem: mem})
	if err != nil {
		t.Fatal(err)
	}
	for addr, w := range want {
		if got.Mem[addr] != w {
			t.Fatalf("mem[%d] = %d, want %d", addr, got.Mem[addr], w)
		}
	}
}

func worstOverflow(s *core.Schedule) int {
	worst := 0
	for _, r := range Analyze(s) {
		if over := r.Demand - r.Capacity; over > worst {
			worst = over
		}
	}
	return worst
}

// TestRegisterAwareOnSuiteKernel checks the option on a real Table 1
// kernel: the schedule stays valid and demand never grows.
func TestRegisterAwareOnSuiteKernel(t *testing.T) {
	// pipelineKernel is synthetic; also try a longer chain kernel with
	// far-apart uses on the clustered machine.
	k := pipelineKernel(t)
	for _, m := range []*machine.Machine{machine.Clustered(4), machine.Central()} {
		base, err := core.Compile(k, m, core.Options{})
		if err != nil {
			t.Fatalf("%s: %v", m.Name, err)
		}
		aware, err := core.Compile(k, m, core.Options{RegisterAware: true})
		if err != nil {
			t.Fatalf("%s aware: %v", m.Name, err)
		}
		if err := core.VerifySchedule(aware); err != nil {
			t.Fatalf("%s: %v", m.Name, err)
		}
		if w := worstOverflow(aware); w > worstOverflow(base) {
			t.Errorf("%s: register-aware increased overflow", m.Name)
		}
	}
}
