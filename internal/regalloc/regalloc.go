// Package regalloc implements the register-allocation post-pass the
// paper leaves as future work (§7): "When communication scheduling
// assigns a communication to a route through a specific register file,
// it implicitly allocates a register in that register file. Register
// file overflows can be handled with a post pass that inserts
// additional copy operations to 'spill' values into other register
// files."
//
// The package computes the implicit per-register-file allocation of a
// finished schedule — using modulo-variable-expansion accounting for
// software-pipelined values, whose lifetimes overlap across iterations
// — detects capacity overflows, and proposes a spill plan: for each
// overflowing file, the longest-lived staged values are moved to
// reachable files with headroom, each move costing a spill-out copy
// after the write and a spill-in copy before the read (exactly the
// paper's recipe).
package regalloc

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/ir"
	"repro/internal/machine"
)

// Interval is the lifetime of one value in one register file.
type Interval struct {
	Value ir.ValueID
	RF    machine.RFID
	// Write and LastRead are flat cycles in the owning block's
	// timeline. Loop-carried reads extend LastRead by distance·II.
	Write    int
	LastRead int
	Block    ir.BlockKind
	// Invariant values (written in the preamble, read by the loop) stay
	// allocated for the whole kernel: one register forever.
	Invariant bool
	// Registers is the count of physical registers the value occupies:
	// ceil(lifetime / II) for software-pipelined values (modulo
	// variable expansion), 1 otherwise.
	Registers int
}

// Report is the allocation summary for one register file.
type Report struct {
	RF        machine.RFID
	Name      string
	Capacity  int
	Demand    int // registers needed simultaneously
	Intervals []Interval
}

// Overflow reports whether the file needs more registers than it has.
func (r Report) Overflow() bool { return r.Demand > r.Capacity }

// Analyze computes the implicit register allocation of a schedule.
func Analyze(s *core.Schedule) []Report {
	intervals := collect(s)
	byRF := make(map[machine.RFID][]Interval)
	for _, iv := range intervals {
		byRF[iv.RF] = append(byRF[iv.RF], iv)
	}
	var reports []Report
	for _, rf := range s.Machine.RegFiles {
		ivs := byRF[rf.ID]
		demand := 0
		for _, iv := range ivs {
			demand += iv.Registers
		}
		sort.Slice(ivs, func(i, j int) bool { return ivs[i].Registers > ivs[j].Registers })
		reports = append(reports, Report{
			RF: rf.ID, Name: rf.Name, Capacity: rf.NumRegs,
			Demand: demand, Intervals: ivs,
		})
	}
	return reports
}

// collect derives the per-(value, file) lifetimes from the schedule's
// routes.
func collect(s *core.Schedule) []Interval {
	type key struct {
		v  ir.ValueID
		rf machine.RFID
	}
	m := make(map[key]*Interval)
	for _, r := range s.Routes {
		defOp, useOp := s.Ops[r.Def], s.Ops[r.Use]
		wflat := s.Assignments[r.Def].Cycle + s.Machine.Latency(defOp.Opcode) - 1
		k := key{r.Value, r.W.RF}
		iv, ok := m[k]
		if !ok {
			iv = &Interval{
				Value: r.Value, RF: r.W.RF, Write: wflat, LastRead: wflat,
				Block: defOp.Block,
			}
			m[k] = iv
		}
		if defOp.Block == ir.PreambleBlock && useOp.Block == ir.LoopBlock {
			iv.Invariant = true
			continue
		}
		ii := 0
		if useOp.Block == ir.LoopBlock {
			ii = s.II
		}
		read := s.Assignments[r.Use].Cycle + r.Distance*ii
		if read > iv.LastRead {
			iv.LastRead = read
		}
	}
	out := make([]Interval, 0, len(m))
	for _, iv := range m {
		switch {
		case iv.Invariant:
			iv.Registers = 1
		case iv.Block == ir.LoopBlock && s.II > 0:
			life := iv.LastRead - iv.Write
			if life < 1 {
				life = 1
			}
			iv.Registers = (life + s.II - 1) / s.II
		default:
			iv.Registers = 1
		}
		out = append(out, *iv)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].RF != out[j].RF {
			return out[i].RF < out[j].RF
		}
		return out[i].Value < out[j].Value
	})
	return out
}

// Check returns an error naming every overflowing register file.
func Check(s *core.Schedule) error {
	var bad []string
	for _, r := range Analyze(s) {
		if r.Overflow() {
			bad = append(bad, fmt.Sprintf("%s needs %d/%d registers", r.Name, r.Demand, r.Capacity))
		}
	}
	if len(bad) == 0 {
		return nil
	}
	return fmt.Errorf("regalloc: register file overflow: %s", strings.Join(bad, "; "))
}

// SpillMove is one proposed spill: evict value from From, staging it in
// To between its write and its reads.
type SpillMove struct {
	Value ir.ValueID
	From  machine.RFID
	To    machine.RFID
	// Registers freed in From (the value keeps 1 register there for the
	// cycles around its write and final read, per the paper's "copying
	// each value out of the overflowing register file just after it is
	// computed and copying it back in just before use").
	Freed int
}

// Plan proposes spill moves resolving every overflow, or an error when
// no reachable file has headroom. The plan is advisory: applying it
// inserts the spill copies as ordinary operations and reschedules,
// which the scheduler performs when asked (the paper's post pass).
func Plan(s *core.Schedule) ([]SpillMove, error) {
	reports := Analyze(s)
	head := make(map[machine.RFID]int)
	for _, r := range reports {
		head[r.RF] = r.Capacity - r.Demand
	}
	var moves []SpillMove
	for _, r := range reports {
		over := r.Demand - r.Capacity
		for _, iv := range r.Intervals {
			if over <= 0 {
				break
			}
			if iv.Registers < 2 {
				continue // spilling frees lifetime-2+ values only
			}
			freed := iv.Registers - 1
			to, ok := findTarget(s.Machine, r.RF, freed, head)
			if !ok {
				return nil, fmt.Errorf("regalloc: no spill target with %d free registers reachable from %s",
					freed, r.Name)
			}
			head[to] -= freed
			head[r.RF] += freed
			over -= freed
			moves = append(moves, SpillMove{Value: iv.Value, From: r.RF, To: to, Freed: freed})
		}
		if over > 0 {
			return nil, fmt.Errorf("regalloc: %s overflow of %d registers cannot be spilled", r.Name, over)
		}
	}
	return moves, nil
}

// findTarget picks the copy-reachable register file with the most
// headroom.
func findTarget(m *machine.Machine, from machine.RFID, need int, head map[machine.RFID]int) (machine.RFID, bool) {
	best, bestHead := machine.NoRF, 0
	for _, rf := range m.RegFiles {
		if rf.ID == from {
			continue
		}
		if m.CopyDistance(from, rf.ID) < 0 || m.CopyDistance(rf.ID, from) < 0 {
			continue
		}
		if h := head[rf.ID]; h >= need && h > bestHead {
			best, bestHead = rf.ID, h
		}
	}
	return best, best != machine.NoRF
}

// FormatReport renders the per-file allocation table.
func FormatReport(s *core.Schedule) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-16s %9s %8s %9s\n", "register file", "capacity", "demand", "overflow")
	for _, r := range Analyze(s) {
		over := ""
		if r.Overflow() {
			over = "OVERFLOW"
		}
		fmt.Fprintf(&b, "%-16s %9d %8d %9s\n", r.Name, r.Capacity, r.Demand, over)
	}
	return b.String()
}
