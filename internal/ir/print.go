package ir

import (
	"fmt"
	"strings"
)

// Dump renders the kernel as readable text, one operation per line, in
// the form consumed by humans debugging schedules:
//
//	preamble:
//	  v0 = movi 0            ; i0
//	loop:
//	  v1 = add phi(v0, v1@1), 1   ; i
func (k *Kernel) Dump() string {
	var b strings.Builder
	fmt.Fprintf(&b, "kernel %s (trip %d)\n", k.Name, k.TripCount)
	dumpBlock := func(label string, ops []OpID) {
		fmt.Fprintf(&b, "%s:\n", label)
		for _, id := range ops {
			op := k.Ops[id]
			b.WriteString("  ")
			if op.Result != NoValue {
				fmt.Fprintf(&b, "v%d = ", op.Result)
			}
			b.WriteString(op.Opcode.String())
			for i, arg := range op.Args {
				if i == 0 {
					b.WriteByte(' ')
				} else {
					b.WriteString(", ")
				}
				b.WriteString(k.operandString(arg))
			}
			if op.Name != "" {
				fmt.Fprintf(&b, "   ; %s", op.Name)
			}
			if op.MemTag != 0 {
				fmt.Fprintf(&b, " [mem %d]", op.MemTag)
			}
			b.WriteByte('\n')
		}
	}
	dumpBlock("preamble", k.Preamble)
	dumpBlock("loop", k.Loop)
	return b.String()
}

func (k *Kernel) operandString(arg Operand) string {
	switch arg.Kind {
	case OperandConst:
		return fmt.Sprintf("%d", arg.Const)
	case OperandValue:
		if len(arg.Srcs) == 1 {
			return srcString(arg.Srcs[0])
		}
		parts := make([]string, len(arg.Srcs))
		for i, s := range arg.Srcs {
			parts[i] = srcString(s)
		}
		return "phi(" + strings.Join(parts, ", ") + ")"
	}
	return "?"
}

func srcString(s Src) string {
	if s.Distance == 0 {
		return fmt.Sprintf("v%d", s.Value)
	}
	return fmt.Sprintf("v%d@%d", s.Value, s.Distance)
}

// Stats summarizes the kernel's operation mix by class, used by the
// reporting tools.
func (k *Kernel) Stats() map[Class]int {
	m := make(map[Class]int)
	for _, op := range k.Ops {
		m[op.Opcode.Class()]++
	}
	return m
}

// LoopStats summarizes the loop block's operation mix by class.
func (k *Kernel) LoopStats() map[Class]int {
	m := make(map[Class]int)
	for _, id := range k.Loop {
		m[k.Ops[id].Opcode.Class()]++
	}
	return m
}
