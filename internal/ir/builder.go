package ir

import "fmt"

// Builder constructs kernels programmatically. The kernel-language
// compiler and the built-in evaluation kernels both use it.
//
// The zero Builder is not ready; use NewBuilder.
type Builder struct {
	k    *Kernel
	cur  BlockKind
	line int
	err  error
}

// NewBuilder returns a builder for a kernel with the given name,
// positioned in the preamble block.
func NewBuilder(name string) *Builder {
	return &Builder{k: &Kernel{Name: name, TripCount: 64}}
}

// SetBlock switches the block subsequent operations are appended to.
func (b *Builder) SetBlock(kind BlockKind) *Builder {
	b.cur = kind
	return b
}

// Loop switches to the loop block.
func (b *Builder) Loop() *Builder { return b.SetBlock(LoopBlock) }

// SetLine sets the source line stamped on subsequently emitted
// operations (0 clears it). The kernel-language lowering calls it per
// statement so scheduler diagnostics can point back at the source.
func (b *Builder) SetLine(line int) *Builder {
	b.line = line
	return b
}

// SetTripCount sets the nominal simulation trip count.
func (b *Builder) SetTripCount(n int) *Builder {
	b.k.TripCount = n
	return b
}

// Err returns the first error recorded while building.
func (b *Builder) Err() error { return b.err }

func (b *Builder) fail(format string, args ...any) {
	if b.err == nil {
		b.err = fmt.Errorf("ir build %s: %s", b.k.Name, fmt.Sprintf(format, args...))
	}
}

// Emit appends an operation producing a named value and returns the
// value id. Opcodes without results record NoValue.
func (b *Builder) Emit(opc Opcode, name string, args ...Operand) ValueID {
	return b.emit(opc, name, 0, args)
}

// EmitMem appends a memory operation carrying an alias tag. Operations
// with equal non-zero tags are ordered against each other.
func (b *Builder) EmitMem(opc Opcode, name string, tag int, args ...Operand) ValueID {
	return b.emit(opc, name, tag, args)
}

func (b *Builder) emit(opc Opcode, name string, tag int, args []Operand) ValueID {
	if b.err != nil {
		return NoValue
	}
	if !opc.Valid() {
		b.fail("invalid opcode %v", opc)
		return NoValue
	}
	if len(args) != opc.NumArgs() {
		b.fail("%v wants %d args, got %d", opc, opc.NumArgs(), len(args))
		return NoValue
	}
	op := &Op{
		ID:     OpID(len(b.k.Ops)),
		Opcode: opc,
		Args:   args,
		Result: NoValue,
		Block:  b.cur,
		Name:   name,
		MemTag: tag,
		Line:   b.line,
	}
	if opc.HasResult() {
		v := &Value{ID: ValueID(len(b.k.Values)), Name: name, Def: op.ID}
		b.k.Values = append(b.k.Values, v)
		op.Result = v.ID
	}
	b.k.Ops = append(b.k.Ops, op)
	if b.cur == LoopBlock {
		op.Pos = len(b.k.Loop)
		b.k.Loop = append(b.k.Loop, op.ID)
	} else {
		op.Pos = len(b.k.Preamble)
		b.k.Preamble = append(b.k.Preamble, op.ID)
	}
	return op.Result
}

// Const is shorthand for an immediate operand.
func (b *Builder) Const(v int64) Operand { return ConstOperand(v) }

// Val is shorthand for a same-iteration value operand.
func (b *Builder) Val(v ValueID) Operand { return ValueOperand(v) }

// MovI emits a move-immediate in the current block.
func (b *Builder) MovI(name string, v int64) ValueID {
	return b.Emit(MovI, name, b.Const(v))
}

// Finish verifies and returns the kernel.
func (b *Builder) Finish() (*Kernel, error) {
	if b.err != nil {
		return nil, b.err
	}
	if err := b.k.Verify(); err != nil {
		return nil, err
	}
	return b.k, nil
}

// MustFinish is Finish for statically known-good kernels (the built-in
// suite); it panics on error.
func (b *Builder) MustFinish() *Kernel {
	k, err := b.Finish()
	if err != nil {
		panic(err)
	}
	return k
}

// LastOpID returns the id of the most recently emitted operation.
func (b *Builder) LastOpID() OpID { return OpID(len(b.k.Ops) - 1) }

// PatchSource rewrites one operand source of an emitted operation. The
// kernel-language lowering uses it to resolve loop-carried back edges
// whose defining operation is emitted after the use.
func (b *Builder) PatchSource(op OpID, slot, srcIndex int, v ValueID) {
	if b.err != nil {
		return
	}
	if int(op) >= len(b.k.Ops) || slot >= len(b.k.Ops[op].Args) ||
		b.k.Ops[op].Args[slot].Kind != OperandValue ||
		srcIndex >= len(b.k.Ops[op].Args[slot].Srcs) {
		b.fail("PatchSource(%d, %d, %d): no such source", op, slot, srcIndex)
		return
	}
	b.k.Ops[op].Args[slot].Srcs[srcIndex].Value = v
}

// NextValueID returns the id the next emitted result will receive,
// which callers use to construct self-referential loop-carried operands
// (accumulators) before emitting the operation that defines them.
func (b *Builder) NextValueID() ValueID { return ValueID(len(b.k.Values)) }

// Accumulator emits the idiomatic reduction pattern: acc = op(phi(init,
// acc@1), x). It returns the in-loop accumulator value. The current
// block must be the loop.
func (b *Builder) Accumulator(opc Opcode, name string, init ValueID, x Operand) ValueID {
	next := b.NextValueID()
	got := b.Emit(opc, name, PhiOperand(init, next, 1), x)
	if got != next && b.err == nil {
		b.fail("accumulator id mismatch: want %d got %d", next, got)
	}
	return got
}

// InductionVar emits the idiomatic loop induction pattern: a preamble
// MovI producing the initial value and a loop Add producing the next
// value, returning an operand that reads the phi of the two and the
// ValueID of the in-loop next value (for bounds tests).
func (b *Builder) InductionVar(name string, init, step int64) (Operand, ValueID) {
	saved := b.cur
	b.cur = PreambleBlock
	iv0 := b.Emit(MovI, name+"0", b.Const(init))
	b.cur = LoopBlock
	// Reserve the phi operand first; the add consumes it.
	// next = phi(init, next@1) + step
	nextID := ValueID(len(b.k.Values)) // id the Add below will receive
	phi := PhiOperand(iv0, nextID, 1)
	got := b.Emit(Add, name, phi, b.Const(step))
	if got != nextID && b.err == nil {
		b.fail("induction variable id mismatch: want %d got %d", nextID, got)
	}
	b.cur = saved
	return phi, got
}
