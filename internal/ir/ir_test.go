package ir

import (
	"strings"
	"testing"
)

func TestOpcodeInfo(t *testing.T) {
	cases := []struct {
		op        Opcode
		name      string
		class     Class
		nargs     int
		hasResult bool
	}{
		{Add, "add", ClsAdd, 2, true},
		{FMul, "fmul", ClsMul, 2, true},
		{Div, "div", ClsDiv, 2, true},
		{Load, "load", ClsMem, 2, true},
		{Store, "store", ClsMem, 3, false},
		{SPWrite, "spwrite", ClsSP, 2, false},
		{Perm, "perm", ClsPerm, 2, true},
		{Copy, "copy", ClsCopy, 1, true},
		{MovI, "movi", ClsAdd, 1, true},
	}
	for _, c := range cases {
		if got := c.op.String(); got != c.name {
			t.Errorf("%v name = %q, want %q", c.op, got, c.name)
		}
		if got := c.op.Class(); got != c.class {
			t.Errorf("%v class = %v, want %v", c.op, got, c.class)
		}
		if got := c.op.NumArgs(); got != c.nargs {
			t.Errorf("%v nargs = %d, want %d", c.op, got, c.nargs)
		}
		if got := c.op.HasResult(); got != c.hasResult {
			t.Errorf("%v hasResult = %v, want %v", c.op, got, c.hasResult)
		}
		if !c.op.Valid() {
			t.Errorf("%v not valid", c.op)
		}
	}
}

func TestOpcodeByName(t *testing.T) {
	for op := Opcode(1); op < numOpcodes; op++ {
		got, ok := OpcodeByName(op.String())
		if !ok || got != op {
			t.Errorf("OpcodeByName(%q) = %v, %v", op.String(), got, ok)
		}
	}
	if _, ok := OpcodeByName("frobnicate"); ok {
		t.Error("OpcodeByName accepted unknown mnemonic")
	}
}

func TestBuilderSimpleKernel(t *testing.T) {
	b := NewBuilder("simple")
	x := b.Emit(MovI, "x", b.Const(3))
	y := b.Emit(MovI, "y", b.Const(4))
	b.Loop()
	s := b.Emit(Add, "s", b.Val(x), b.Val(y))
	b.Emit(Store, "", b.Val(s), b.Const(0), b.Const(0))
	k, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if len(k.Preamble) != 2 || len(k.Loop) != 2 {
		t.Fatalf("block sizes = %d/%d, want 2/2", len(k.Preamble), len(k.Loop))
	}
	if len(k.Values) != 3 {
		t.Fatalf("got %d values, want 3", len(k.Values))
	}
	if k.Ops[k.Values[s].Def].Opcode != Add {
		t.Error("value s not defined by add")
	}
	uses := k.Uses()
	if len(uses[x]) != 1 || uses[x][0].Op != k.Values[s].Def {
		t.Errorf("uses of x = %+v", uses[x])
	}
}

func TestBuilderArityError(t *testing.T) {
	b := NewBuilder("bad")
	b.Emit(Add, "x", b.Const(1)) // missing second arg
	if _, err := b.Finish(); err == nil {
		t.Fatal("Finish accepted wrong arity")
	}
}

func TestInductionVar(t *testing.T) {
	b := NewBuilder("iv")
	iv, next := b.InductionVar("i", 0, 1)
	b.Loop()
	b.Emit(Store, "", iv, b.Const(0), b.Const(0))
	k, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if len(iv.Srcs) != 2 {
		t.Fatalf("induction operand has %d srcs, want 2", len(iv.Srcs))
	}
	if iv.Srcs[1].Value != next || iv.Srcs[1].Distance != 1 {
		t.Errorf("carried src = %+v, want value %d distance 1", iv.Srcs[1], next)
	}
	def := k.Ops[k.Values[next].Def]
	if def.Block != LoopBlock || def.Opcode != Add {
		t.Errorf("next defined by %v in %v", def.Opcode, def.Block)
	}
	// The add reads its own result from the previous iteration.
	src := def.Args[0].Srcs[1]
	if src.Value != next || src.Distance != 1 {
		t.Errorf("self-carried src = %+v", src)
	}
}

func TestVerifyRejectsUseBeforeDef(t *testing.T) {
	b := NewBuilder("cycle")
	b.Loop()
	// Manually build a same-iteration cycle: a uses b, b uses a.
	aID := ValueID(0)
	bID := ValueID(1)
	b.Emit(Add, "a", Operand{Kind: OperandValue, Srcs: []Src{{Value: bID}}}, b.Const(1))
	b.Emit(Add, "b", Operand{Kind: OperandValue, Srcs: []Src{{Value: aID}}}, b.Const(1))
	if _, err := b.Finish(); err == nil {
		t.Fatal("Finish accepted same-iteration cycle")
	}
}

func TestVerifyRejectsPreambleReadingLoop(t *testing.T) {
	b := NewBuilder("backwards")
	b.Loop()
	v := b.Emit(MovI, "v", b.Const(1))
	b.SetBlock(PreambleBlock)
	b.Emit(Add, "w", b.Val(v), b.Const(1))
	if _, err := b.Finish(); err == nil {
		t.Fatal("Finish accepted preamble use of loop value")
	}
}

func TestVerifyRejectsMalformedPhi(t *testing.T) {
	b := NewBuilder("phi")
	x := b.Emit(MovI, "x", b.Const(1))
	y := b.Emit(MovI, "y", b.Const(2))
	b.Loop()
	// Phi of two preamble values (no carried source) is malformed.
	bad := Operand{Kind: OperandValue, Srcs: []Src{{Value: x}, {Value: y}}}
	b.Emit(Add, "z", bad, b.Const(0))
	if _, err := b.Finish(); err == nil {
		t.Fatal("Finish accepted phi without carried source")
	}
}

func TestVerifyRejectsCarriedOutsideLoop(t *testing.T) {
	b := NewBuilder("carried")
	x := b.Emit(MovI, "x", b.Const(1))
	b.Emit(Add, "y", CarriedOperand(x, 1), b.Const(0))
	if _, err := b.Finish(); err == nil {
		t.Fatal("Finish accepted loop-carried source in preamble")
	}
}

func TestDumpRendering(t *testing.T) {
	b := NewBuilder("dct-ish")
	iv, _ := b.InductionVar("i", 0, 1)
	b.Loop()
	x := b.Emit(Load, "x", iv, b.Const(0))
	y := b.Emit(Mul, "y", b.Val(x), b.Const(3))
	b.Emit(Store, "", b.Val(y), iv, b.Const(0))
	k, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	d := k.Dump()
	for _, want := range []string{"kernel dct-ish", "preamble:", "loop:", "phi(", "load", "mul", "store"} {
		if !strings.Contains(d, want) {
			t.Errorf("dump missing %q:\n%s", want, d)
		}
	}
}

func TestStats(t *testing.T) {
	b := NewBuilder("stats")
	iv, _ := b.InductionVar("i", 0, 1)
	b.Loop()
	x := b.Emit(Load, "x", iv, b.Const(0))
	b.Emit(Mul, "y", b.Val(x), b.Const(3))
	k, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	ls := k.LoopStats()
	if ls[ClsAdd] != 1 || ls[ClsMem] != 1 || ls[ClsMul] != 1 {
		t.Errorf("loop stats = %v", ls)
	}
	all := k.Stats()
	if all[ClsAdd] != 2 {
		t.Errorf("stats = %v", all)
	}
}

func TestArgValue(t *testing.T) {
	b := NewBuilder("argval")
	x := b.Emit(MovI, "x", b.Const(1))
	b.Loop()
	b.Emit(Add, "y", b.Val(x), b.Const(2))
	k, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	add := k.Ops[k.Loop[0]]
	src, ok := add.ArgValue(0)
	if !ok || src.Value != x {
		t.Errorf("ArgValue(0) = %+v, %v", src, ok)
	}
	if _, ok := add.ArgValue(1); ok {
		t.Error("ArgValue(1) should fail for const operand")
	}
}
