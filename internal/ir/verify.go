package ir

import "fmt"

// Verify checks the structural invariants the scheduler relies on:
//
//   - value and op ids are dense and self-consistent;
//   - SSA: every value has exactly one defining op whose Result matches;
//   - operand arity matches the opcode;
//   - preamble operations never read loop-defined values and never carry
//     a loop distance;
//   - loop-carried sources (distance > 0) name loop-defined values;
//   - a multi-source (phi) operand merges a preamble definition with a
//     loop-carried definition, the only control-flow merge the two-block
//     kernel shape admits;
//   - same-iteration uses inside one block are acyclic in program order
//     (a value is defined before its distance-0 uses).
func (k *Kernel) Verify() error {
	if len(k.Preamble)+len(k.Loop) != len(k.Ops) {
		return fmt.Errorf("ir verify %s: block op lists cover %d ops, kernel has %d",
			k.Name, len(k.Preamble)+len(k.Loop), len(k.Ops))
	}
	for i, op := range k.Ops {
		if op == nil {
			return fmt.Errorf("ir verify %s: nil op %d", k.Name, i)
		}
		if op.ID != OpID(i) {
			return fmt.Errorf("ir verify %s: op %d has id %d", k.Name, i, op.ID)
		}
		if !op.Opcode.Valid() {
			return fmt.Errorf("ir verify %s: op %d has invalid opcode", k.Name, i)
		}
		if len(op.Args) != op.Opcode.NumArgs() {
			return fmt.Errorf("ir verify %s: op %d (%v) has %d args, want %d",
				k.Name, i, op.Opcode, len(op.Args), op.Opcode.NumArgs())
		}
		if op.Opcode.HasResult() != (op.Result != NoValue) {
			return fmt.Errorf("ir verify %s: op %d (%v) result mismatch", k.Name, i, op.Opcode)
		}
		// Memory offsets and fractional-multiply shifts are immediates
		// resolved inside the unit, never routed values.
		if op.Opcode == Load || op.Opcode == Store || op.Opcode == MulQ {
			off := op.Args[len(op.Args)-1]
			if off.Kind != OperandConst {
				return fmt.Errorf("ir verify %s: op %d (%v) offset operand must be an immediate",
					k.Name, i, op.Opcode)
			}
		}
	}
	for i, v := range k.Values {
		if v == nil {
			return fmt.Errorf("ir verify %s: nil value %d", k.Name, i)
		}
		if v.ID != ValueID(i) {
			return fmt.Errorf("ir verify %s: value %d has id %d", k.Name, i, v.ID)
		}
		if v.Def < 0 || int(v.Def) >= len(k.Ops) {
			return fmt.Errorf("ir verify %s: value %s has bad def op %d", k.Name, v.Name, v.Def)
		}
		if k.Ops[v.Def].Result != v.ID {
			return fmt.Errorf("ir verify %s: value %s def op does not produce it", k.Name, v.Name)
		}
	}
	for bi, list := range [][]OpID{k.Preamble, k.Loop} {
		kind := PreambleBlock
		if bi == 1 {
			kind = LoopBlock
		}
		for pos, id := range list {
			if id < 0 || int(id) >= len(k.Ops) {
				return fmt.Errorf("ir verify %s: %v block references bad op %d", k.Name, kind, id)
			}
			op := k.Ops[id]
			if op.Block != kind || op.Pos != pos {
				return fmt.Errorf("ir verify %s: op %d block/pos inconsistent", k.Name, id)
			}
		}
	}
	for _, op := range k.Ops {
		for slot, arg := range op.Args {
			if err := k.verifyOperand(op, slot, arg); err != nil {
				return err
			}
		}
	}
	return k.verifyAcyclic()
}

func (k *Kernel) verifyOperand(op *Op, slot int, arg Operand) error {
	switch arg.Kind {
	case OperandConst:
		return nil
	case OperandNone:
		return fmt.Errorf("ir verify %s: op %d slot %d unset", k.Name, op.ID, slot)
	case OperandValue:
	default:
		return fmt.Errorf("ir verify %s: op %d slot %d bad operand kind", k.Name, op.ID, slot)
	}
	if len(arg.Srcs) == 0 {
		return fmt.Errorf("ir verify %s: op %d slot %d has no sources", k.Name, op.ID, slot)
	}
	for _, src := range arg.Srcs {
		if src.Value < 0 || int(src.Value) >= len(k.Values) {
			return fmt.Errorf("ir verify %s: op %d slot %d bad value %d", k.Name, op.ID, slot, src.Value)
		}
		def := k.Ops[k.Values[src.Value].Def]
		if src.Distance < 0 {
			return fmt.Errorf("ir verify %s: op %d slot %d negative distance", k.Name, op.ID, slot)
		}
		if src.Distance > 0 {
			if op.Block != LoopBlock || def.Block != LoopBlock {
				return fmt.Errorf("ir verify %s: op %d slot %d loop-carried source outside loop",
					k.Name, op.ID, slot)
			}
		}
		if op.Block == PreambleBlock && def.Block == LoopBlock {
			return fmt.Errorf("ir verify %s: preamble op %d reads loop value %s",
				k.Name, op.ID, k.Values[src.Value].Name)
		}
	}
	if len(arg.Srcs) > 1 {
		// Phi: one distance-0 source defined in the preamble plus
		// loop-carried sources.
		if op.Block != LoopBlock {
			return fmt.Errorf("ir verify %s: op %d slot %d phi outside loop", k.Name, op.ID, slot)
		}
		var init, carried int
		for _, src := range arg.Srcs {
			def := k.Ops[k.Values[src.Value].Def]
			switch {
			case src.Distance == 0 && def.Block == PreambleBlock:
				init++
			case src.Distance > 0 && def.Block == LoopBlock:
				carried++
			default:
				return fmt.Errorf("ir verify %s: op %d slot %d malformed phi source", k.Name, op.ID, slot)
			}
		}
		if init != 1 || carried < 1 {
			return fmt.Errorf("ir verify %s: op %d slot %d phi needs one init + carried sources",
				k.Name, op.ID, slot)
		}
	}
	return nil
}

// verifyAcyclic checks that distance-0 dependences respect program order
// within each block, which guarantees the intra-iteration dependence
// graph is a DAG.
func (k *Kernel) verifyAcyclic() error {
	for _, op := range k.Ops {
		for slot, arg := range op.Args {
			if arg.Kind != OperandValue {
				continue
			}
			for _, src := range arg.Srcs {
				if src.Distance != 0 {
					continue
				}
				def := k.Ops[k.Values[src.Value].Def]
				if def.Block == op.Block && def.Pos >= op.Pos {
					return fmt.Errorf("ir verify %s: op %d slot %d uses %s before its definition",
						k.Name, op.ID, slot, k.Values[src.Value].Name)
				}
				if def.Block == LoopBlock && op.Block == PreambleBlock {
					return fmt.Errorf("ir verify %s: preamble op %d depends on loop op", k.Name, op.ID)
				}
			}
		}
	}
	return nil
}
