package ir

import (
	"strings"
	"testing"
)

func TestBuilderHelpers(t *testing.T) {
	b := NewBuilder("helpers")
	x := b.MovI("x", 42)
	if b.Err() != nil {
		t.Fatal(b.Err())
	}
	if b.NextValueID() != x+1 {
		t.Errorf("NextValueID = %d, want %d", b.NextValueID(), x+1)
	}
	b.SetTripCount(9)
	b.Loop()
	y := b.EmitMem(Load, "y", 3, b.Val(x), b.Const(0))
	if got := b.LastOpID(); got != OpID(1) {
		t.Errorf("LastOpID = %d, want 1", got)
	}
	b.Emit(Store, "", b.Val(y), b.Val(x), b.Const(0))
	k := b.MustFinish()
	if k.TripCount != 9 {
		t.Errorf("trip = %d", k.TripCount)
	}
	if k.Ops[1].MemTag != 3 {
		t.Errorf("mem tag = %d, want 3", k.Ops[1].MemTag)
	}
	if k.NumOps() != 3 {
		t.Errorf("NumOps = %d", k.NumOps())
	}
	if k.Op(1) != k.Ops[1] || k.Value(y).ID != y {
		t.Error("accessors broken")
	}
	if len(k.BlockOps(PreambleBlock)) != 1 || len(k.BlockOps(LoopBlock)) != 2 {
		t.Error("BlockOps wrong")
	}
	if !strings.Contains(k.String(), "helpers") {
		t.Errorf("String = %q", k.String())
	}
	if PreambleBlock.String() != "preamble" || LoopBlock.String() != "loop" {
		t.Error("block kind names")
	}
}

func TestPatchSourceValidation(t *testing.T) {
	b := NewBuilder("patch")
	x := b.MovI("x", 1)
	b.Emit(Add, "y", b.Val(x), b.Const(1))
	op := b.LastOpID()
	b.PatchSource(op, 0, 0, x) // valid no-op patch
	if b.Err() != nil {
		t.Fatal(b.Err())
	}
	b.PatchSource(op, 1, 0, x) // slot 1 is a const: invalid
	if b.Err() == nil {
		t.Error("PatchSource accepted const slot")
	}
}

func TestMustFinishPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustFinish did not panic on bad kernel")
		}
	}()
	b := NewBuilder("bad")
	b.Emit(Add, "x", b.Const(1)) // wrong arity
	b.MustFinish()
}

func TestClassStrings(t *testing.T) {
	for c := ClsNone; c < NumClasses; c++ {
		if c.String() == "" || strings.HasPrefix(c.String(), "Class(") {
			t.Errorf("class %d has no name", int(c))
		}
	}
	if Opcode(999).String() == "" || Opcode(999).Valid() {
		t.Error("invalid opcode handling")
	}
	if Opcode(999).Class() != ClsNone || Opcode(999).NumArgs() != 0 || Opcode(999).HasResult() {
		t.Error("invalid opcode metadata")
	}
}

func TestCommutativity(t *testing.T) {
	for _, op := range []Opcode{Add, Mul, And, Or, Xor, Min, Max, FAdd, FMul, MulQ} {
		if !op.Commutative() {
			t.Errorf("%v should be commutative", op)
		}
	}
	for _, op := range []Opcode{Sub, Div, Shl, Store, Load, CmpLT, Select} {
		if op.Commutative() {
			t.Errorf("%v should not be commutative", op)
		}
	}
}

func TestOperandConstructors(t *testing.T) {
	c := ConstOperand(5)
	if c.Kind != OperandConst || c.Const != 5 {
		t.Error("ConstOperand")
	}
	v := ValueOperand(3)
	if v.Kind != OperandValue || len(v.Srcs) != 1 || v.Srcs[0].Value != 3 {
		t.Error("ValueOperand")
	}
	cv := CarriedOperand(3, 2)
	if cv.Srcs[0].Distance != 2 {
		t.Error("CarriedOperand")
	}
	p := PhiOperand(1, 2, 1)
	if len(p.Srcs) != 2 || p.Srcs[1].Distance != 1 {
		t.Error("PhiOperand")
	}
}

func TestUsesIndex(t *testing.T) {
	b := NewBuilder("uses")
	x := b.MovI("x", 1)
	b.Loop()
	b.Emit(Add, "a", b.Val(x), b.Val(x))
	k := b.MustFinish()
	uses := k.Uses()
	if len(uses[x]) != 2 {
		t.Errorf("x has %d uses, want 2 (both operands)", len(uses[x]))
	}
	if uses[x][0].Slot == uses[x][1].Slot {
		t.Error("use slots not distinct")
	}
}
