package ir

import "fmt"

// OpID identifies an operation within a kernel. IDs are dense and stable:
// they index Kernel.Ops.
type OpID int

// ValueID identifies an SSA value within a kernel. IDs are dense and
// stable: they index Kernel.Values.
type ValueID int

// NoOp and NoValue are sentinel "absent" identifiers.
const (
	NoOp    OpID    = -1
	NoValue ValueID = -1
)

// BlockKind distinguishes the preamble from the software-pipelined loop.
type BlockKind int

const (
	// PreambleBlock executes once before the loop.
	PreambleBlock BlockKind = iota
	// LoopBlock executes repeatedly and is software pipelined.
	LoopBlock
)

// String returns the block kind name.
func (k BlockKind) String() string {
	if k == LoopBlock {
		return "loop"
	}
	return "preamble"
}

// Src names one possible producer of an operand value. Distance is the
// loop-carried distance: a Src with Distance d refers to the value
// produced d iterations earlier. Distance is zero for values produced in
// the same iteration (or in the preamble).
type Src struct {
	Value    ValueID
	Distance int
}

// OperandKind distinguishes the three ways an operand is supplied.
type OperandKind int

const (
	// OperandNone marks an unused operand slot.
	OperandNone OperandKind = iota
	// OperandConst supplies an immediate constant; immediates travel in
	// the instruction word and need no interconnect.
	OperandConst
	// OperandValue reads an SSA value. Srcs holds one entry for a plain
	// use and several for a control-flow merge ("If an operation could
	// use one of several results as an operand due to different control
	// flows then a separate communication exists for each such result",
	// §3). All sources of one operand must be readable through the same
	// read stub (§4.2).
	OperandValue
)

// Operand is one input of an operation.
type Operand struct {
	Kind  OperandKind
	Srcs  []Src // for OperandValue
	Const int64 // for OperandConst
}

// ConstOperand returns an immediate operand.
func ConstOperand(v int64) Operand {
	return Operand{Kind: OperandConst, Const: v}
}

// ValueOperand returns an operand reading v from the current iteration.
func ValueOperand(v ValueID) Operand {
	return Operand{Kind: OperandValue, Srcs: []Src{{Value: v}}}
}

// CarriedOperand returns an operand reading v from distance iterations
// earlier.
func CarriedOperand(v ValueID, distance int) Operand {
	return Operand{Kind: OperandValue, Srcs: []Src{{Value: v, Distance: distance}}}
}

// PhiOperand returns an operand whose value is init on the first loop
// iteration (produced by a preamble op) and next (produced in the loop,
// distance iterations earlier, normally 1) afterwards.
func PhiOperand(init ValueID, next ValueID, distance int) Operand {
	return Operand{Kind: OperandValue, Srcs: []Src{
		{Value: init},
		{Value: next, Distance: distance},
	}}
}

// Op is a single operation. Operations are scheduled onto functional
// units by the scheduler; their operand edges become communications.
type Op struct {
	ID     OpID
	Opcode Opcode
	Args   []Operand
	Result ValueID // NoValue when Opcode.HasResult() is false
	Block  BlockKind
	Pos    int    // index within the block, for deterministic ordering
	Name   string // diagnostic label, usually the result variable name

	// MemTag groups memory operations that may alias; Load/Store ops
	// sharing a tag are ordered by the dependence builder. Tag 0 means
	// "no aliasing" (disjoint streams, the common media-kernel case).
	MemTag int

	// Line is the kernel-language source line the operation was lowered
	// from, 0 when the kernel was built directly in IR. Diagnostics use
	// it; scheduling ignores it.
	Line int
}

// ArgValue returns the single source of operand slot i, for callers that
// know the operand is a plain (non-phi) value use.
func (o *Op) ArgValue(i int) (Src, bool) {
	if i >= len(o.Args) || o.Args[i].Kind != OperandValue || len(o.Args[i].Srcs) != 1 {
		return Src{}, false
	}
	return o.Args[i].Srcs[0], true
}

// Value is the metadata for one SSA value.
type Value struct {
	ID   ValueID
	Name string
	Def  OpID // defining operation
}

// Kernel is a schedulable unit: a preamble and one loop, as in the
// paper's evaluation kernels.
type Kernel struct {
	Name     string
	Ops      []*Op    // all operations, indexed by OpID
	Values   []*Value // all values, indexed by ValueID
	Preamble []OpID   // operations in the preamble, in program order
	Loop     []OpID   // operations in the loop body, in program order

	// TripCount is the nominal loop trip count used by the simulator;
	// it does not affect scheduling (the paper's metric is the loop
	// schedule length).
	TripCount int
}

// Op returns the operation with the given id.
func (k *Kernel) Op(id OpID) *Op { return k.Ops[id] }

// Value returns the value with the given id.
func (k *Kernel) Value(id ValueID) *Value { return k.Values[id] }

// BlockOps returns the op ids of the requested block in program order.
func (k *Kernel) BlockOps(b BlockKind) []OpID {
	if b == LoopBlock {
		return k.Loop
	}
	return k.Preamble
}

// NumOps returns the total operation count.
func (k *Kernel) NumOps() int { return len(k.Ops) }

// Uses returns, for every value, the list of (op, slot, src index) uses.
// The result is freshly computed; callers that need it repeatedly should
// cache it.
func (k *Kernel) Uses() map[ValueID][]Use {
	uses := make(map[ValueID][]Use)
	for _, op := range k.Ops {
		for slot, arg := range op.Args {
			if arg.Kind != OperandValue {
				continue
			}
			for si, src := range arg.Srcs {
				uses[src.Value] = append(uses[src.Value], Use{
					Op: op.ID, Slot: slot, SrcIndex: si, Distance: src.Distance,
				})
			}
		}
	}
	return uses
}

// Use records one reading of a value.
type Use struct {
	Op       OpID
	Slot     int
	SrcIndex int
	Distance int
}

// String renders a short description.
func (k *Kernel) String() string {
	return fmt.Sprintf("kernel %s: %d preamble ops, %d loop ops, %d values",
		k.Name, len(k.Preamble), len(k.Loop), len(k.Values))
}
