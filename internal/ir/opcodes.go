// Package ir defines the intermediate representation consumed by the
// scheduler: kernels made of a preamble block and a single loop block,
// SSA-style values, and operations with explicit (possibly loop-carried)
// operand edges.
//
// The representation mirrors the kernels evaluated in the paper: "Each
// kernel consists of a short preamble followed by a single
// software-pipelined loop" (§5). Values are defined exactly once; an
// operand may name several possible sources ("If an operation could use
// one of several results as an operand due to different control flows
// then a separate communication exists for each such result", §3), which
// is how loop-carried variables (phi of initial value and next-iteration
// value) are expressed.
package ir

import "fmt"

// Opcode identifies the operation an Op performs.
type Opcode int

// The opcode set covers the arithmetic needed by the ten evaluation
// kernels of Table 1 (fixed-point and floating-point media arithmetic,
// memory access, scratchpad access, permutation) plus the Copy opcode
// inserted by communication scheduling (§4.3 step 5).
const (
	Nop Opcode = iota

	// Integer ALU (executes on adders).
	MovI // result = immediate
	Add
	Sub
	Neg
	And
	Or
	Xor
	Not
	Shl
	Shr
	Asr
	Min
	Max
	Abs
	CmpLT
	CmpLE
	CmpEQ
	CmpNE
	Select // result = arg0 != 0 ? arg1 : arg2 (two-input form: arg0 selector packed)

	// Floating point adder ops (execute on adders).
	FAdd
	FSub
	FNeg
	FMin
	FMax
	FCmpLT
	FAbs
	ItoF
	FtoI

	// Multiplier ops. MulQ is the fractional (fixed-point) multiply of
	// DSP ISAs: result = (arg0·arg1) >> shift(arg2), with the shift an
	// immediate resolved inside the multiplier pipeline.
	Mul
	MulHi
	MulQ
	FMul

	// Divider ops.
	Div
	Rem
	FDiv
	FSqrt

	// Memory (load/store units). Loads and stores use base+offset
	// addressing: the final operand is an immediate offset added to the
	// base address, performed by the load/store unit's address
	// generator (as on stream processors), so index arithmetic does not
	// consume ALU issue slots or writeback buses.
	Load  // result = mem[arg0 + offset(arg1)]
	Store // mem[arg1 + offset(arg2)] = arg0

	// Scratchpad.
	SPRead
	SPWrite

	// Permutation unit.
	Perm
	Shuffle

	// Copy moves a value between register files. It is inserted by
	// communication scheduling, never written by kernels directly.
	Copy

	numOpcodes
)

// Class groups opcodes by the kind of functional unit that can execute
// them. The machine model maps classes to functional units.
type Class int

const (
	ClsNone Class = iota
	ClsAdd        // adder/ALU operations
	ClsMul        // multiplier operations
	ClsDiv        // divider operations
	ClsMem        // load/store unit operations
	ClsSP         // scratchpad operations
	ClsPerm       // permutation unit operations
	ClsCopy       // inter-register-file copy

	NumClasses
)

// String returns the class mnemonic.
func (c Class) String() string {
	switch c {
	case ClsNone:
		return "none"
	case ClsAdd:
		return "alu"
	case ClsMul:
		return "mul"
	case ClsDiv:
		return "div"
	case ClsMem:
		return "mem"
	case ClsSP:
		return "sp"
	case ClsPerm:
		return "perm"
	case ClsCopy:
		return "copy"
	}
	return fmt.Sprintf("Class(%d)", int(c))
}

var opcodeInfo = [numOpcodes]struct {
	name      string
	class     Class
	nargs     int
	hasResult bool
}{
	Nop:     {"nop", ClsNone, 0, false},
	MovI:    {"movi", ClsAdd, 1, true},
	Add:     {"add", ClsAdd, 2, true},
	Sub:     {"sub", ClsAdd, 2, true},
	Neg:     {"neg", ClsAdd, 1, true},
	And:     {"and", ClsAdd, 2, true},
	Or:      {"or", ClsAdd, 2, true},
	Xor:     {"xor", ClsAdd, 2, true},
	Not:     {"not", ClsAdd, 1, true},
	Shl:     {"shl", ClsAdd, 2, true},
	Shr:     {"shr", ClsAdd, 2, true},
	Asr:     {"asr", ClsAdd, 2, true},
	Min:     {"min", ClsAdd, 2, true},
	Max:     {"max", ClsAdd, 2, true},
	Abs:     {"abs", ClsAdd, 1, true},
	CmpLT:   {"cmplt", ClsAdd, 2, true},
	CmpLE:   {"cmple", ClsAdd, 2, true},
	CmpEQ:   {"cmpeq", ClsAdd, 2, true},
	CmpNE:   {"cmpne", ClsAdd, 2, true},
	Select:  {"select", ClsAdd, 2, true},
	FAdd:    {"fadd", ClsAdd, 2, true},
	FSub:    {"fsub", ClsAdd, 2, true},
	FNeg:    {"fneg", ClsAdd, 1, true},
	FMin:    {"fmin", ClsAdd, 2, true},
	FMax:    {"fmax", ClsAdd, 2, true},
	FCmpLT:  {"fcmplt", ClsAdd, 2, true},
	FAbs:    {"fabs", ClsAdd, 1, true},
	ItoF:    {"itof", ClsAdd, 1, true},
	FtoI:    {"ftoi", ClsAdd, 1, true},
	Mul:     {"mul", ClsMul, 2, true},
	MulHi:   {"mulhi", ClsMul, 2, true},
	MulQ:    {"mulq", ClsMul, 3, true},
	FMul:    {"fmul", ClsMul, 2, true},
	Div:     {"div", ClsDiv, 2, true},
	Rem:     {"rem", ClsDiv, 2, true},
	FDiv:    {"fdiv", ClsDiv, 2, true},
	FSqrt:   {"fsqrt", ClsDiv, 1, true},
	Load:    {"load", ClsMem, 2, true},
	Store:   {"store", ClsMem, 3, false},
	SPRead:  {"spread", ClsSP, 1, true},
	SPWrite: {"spwrite", ClsSP, 2, false},
	Perm:    {"perm", ClsPerm, 2, true},
	Shuffle: {"shuffle", ClsPerm, 2, true},
	Copy:    {"copy", ClsCopy, 1, true},
}

// String returns the opcode mnemonic.
func (o Opcode) String() string {
	if o < 0 || o >= numOpcodes {
		return fmt.Sprintf("Opcode(%d)", int(o))
	}
	return opcodeInfo[o].name
}

// Class reports which functional-unit class executes the opcode.
func (o Opcode) Class() Class {
	if o < 0 || o >= numOpcodes {
		return ClsNone
	}
	return opcodeInfo[o].class
}

// NumArgs reports how many value operands the opcode takes (immediates
// may substitute for any of them).
func (o Opcode) NumArgs() int {
	if o < 0 || o >= numOpcodes {
		return 0
	}
	return opcodeInfo[o].nargs
}

// HasResult reports whether the opcode produces a value.
func (o Opcode) HasResult() bool {
	if o < 0 || o >= numOpcodes {
		return false
	}
	return opcodeInfo[o].hasResult
}

// Valid reports whether o is a defined opcode.
func (o Opcode) Valid() bool { return o > Nop && o < numOpcodes }

// Commutative reports whether the opcode's first two operands may be
// exchanged. The scheduler exploits this to route either operand
// through either physical input of the unit.
func (o Opcode) Commutative() bool {
	switch o {
	case Add, Mul, MulHi, MulQ, And, Or, Xor, Min, Max, CmpEQ, CmpNE,
		FAdd, FMul, FMin, FMax:
		return true
	}
	return false
}

// IsFloat reports whether the opcode operates on floating-point data.
// The simulator uses this to pick the interpretation of register bits.
func (o Opcode) IsFloat() bool {
	switch o {
	case FAdd, FSub, FNeg, FMin, FMax, FCmpLT, FAbs, FMul, FDiv, FSqrt, ItoF:
		return true
	}
	return false
}

// OpcodeByName returns the opcode with the given mnemonic, or Nop and
// false when no such opcode exists. The kernel-language parser uses it.
func OpcodeByName(name string) (Opcode, bool) {
	for op := Opcode(1); op < numOpcodes; op++ {
		if opcodeInfo[op].name == name {
			return op, true
		}
	}
	return Nop, false
}
