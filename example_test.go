package commsched_test

import (
	"fmt"
	"log"

	commsched "repro"
)

// Compile a kernel for the paper's distributed register-file machine
// and read off the loop's initiation interval — the paper's
// performance metric.
func Example() {
	src := `
kernel axpy {
  stream x @ 0;
  stream y @ 64;
  stream out @ 128;
  loop i = 0 .. 16 {
    out[i] = x[i] * 3 + y[i];
  }
}`
	sched, err := commsched.CompileSource(src, commsched.Distributed(), commsched.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("II=%d copies=%d\n", sched.II, len(sched.Ops)-len(sched.Kernel.Ops))
	// Output: II=1 copies=0
}

// Execute a schedule on the cycle-accurate machine model and read the
// results out of simulated memory.
func ExampleSimulate() {
	src := `
kernel double {
  stream x @ 0;
  stream out @ 8;
  loop i = 0 .. 4 {
    out[i] = x[i] + x[i];
  }
}`
	sched, err := commsched.CompileSource(src, commsched.Clustered4(), commsched.Options{})
	if err != nil {
		log.Fatal(err)
	}
	res, err := commsched.Simulate(sched, commsched.SimConfig{
		InitMem: map[int64]int64{0: 10, 1: 11, 2: 12, 3: 13},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.Mem[8], res.Mem[9], res.Mem[10], res.Mem[11])
	// Output: 20 22 24 26
}

// The motivating example of §2: communication scheduling fits the
// Fig. 4 fragment onto the Fig. 5 shared-interconnect machine by
// inserting a copy operation (Fig. 7).
func ExampleMotivatingKernel() {
	k := commsched.MotivatingKernel()
	sched, err := commsched.Compile(k, commsched.Fig5Machine(), commsched.Options{})
	if err != nil {
		log.Fatal(err)
	}
	frag := 0
	for i := 0; i < 5; i++ { // the paper's five operations
		if c := sched.Assignments[i].Cycle + 1; c > frag {
			frag = c
		}
	}
	fmt.Printf("fragment scheduled in %d cycles with %d copy\n",
		frag, len(sched.Ops)-len(k.Ops)-1) // one extra copy serves the trailing stores
	// Output: fragment scheduled in 3 cycles with 1 copy
}

// Machines are plain descriptions: novel organizations parse from text
// and compile with the same scheduler (§8).
func ExampleParseMachine() {
	m, err := commsched.ParseMachine(`
machine demo
bus g0 global
fu a0 add inputs=2 cancopy
fu ls0 ls inputs=2 cancopy
rf a0.in0 regs=8
rf a0.in1 regs=8
rf ls0.in0 regs=8
rf ls0.in1 regs=8
read a0.in0 -> a0.in0
read a0.in1 -> a0.in1
read ls0.in0 -> ls0.in0
read ls0.in1 -> ls0.in1
wport a0.in0 w0
wport a0.in1 w1
wport ls0.in0 w2
wport ls0.in1 w3
connect a0.out -> g0
connect ls0.out -> g0
connect g0 -> w0
connect g0 -> w1
connect g0 -> w2
connect g0 -> w3
`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(m.Summary())
	// Output: demo: 2 FUs, 4 RFs, 5 buses, 4 read ports, 4 write ports
}
