package commsched

import (
	"bytes"
	"encoding/json"
	"flag"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/daemon"
	"repro/internal/kernels"
	"repro/internal/machine"
)

var updateDaemon = flag.Bool("update-daemon", false, "rewrite the daemon response-body goldens")

// daemonFixtures are the served response bodies pinned under
// testdata/daemon/: the motivating example on its paper machine, and an
// inline tiny kernel on the central machine. Every byte of these bodies
// is deterministic — pass counters exclude wall time and the schedule
// dump, key, and fingerprint are content-addressed — so the fixtures
// are exact.
var daemonFixtures = []struct {
	golden string
	req    daemon.CompileRequest
	kernel func() *Kernel
	mach   *Machine
}{
	{
		golden: "fig4_fig5.json",
		req:    daemon.CompileRequest{Kernel: "fig4", Machine: "fig5"},
		kernel: kernels.Motivating,
		mach:   machine.MotivatingExample(),
	},
	{
		golden: "tiny_central.json",
		req: daemon.CompileRequest{
			Source:  "kernel tiny {\n  stream out @ 512;\n  loop i = 0 .. 8 {\n    out[i] = i * 3;\n  }\n}\n",
			Machine: "central",
		},
		kernel: nil, // compiled from the same source below
		mach:   machine.Central(),
	},
}

// serveCompile runs one request through a fresh daemon and returns the
// raw response body.
func serveCompile(t *testing.T, req daemon.CompileRequest) []byte {
	t.Helper()
	srv, err := daemon.New(daemon.Config{})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()
	payload, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Post(ts.URL+"/v1/compile", "application/json", bytes.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body bytes.Buffer
	if _, err := body.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("compile: %d\n%s", resp.StatusCode, body.Bytes())
	}
	return body.Bytes()
}

// TestDaemonResponseGoldens pins the full served body for each fixture
// request byte-for-byte. Run with -update-daemon to regenerate after an
// intentional response change.
func TestDaemonResponseGoldens(t *testing.T) {
	for _, fx := range daemonFixtures {
		t.Run(fx.golden, func(t *testing.T) {
			body := serveCompile(t, fx.req)
			var pretty bytes.Buffer
			if err := json.Indent(&pretty, body, "", "  "); err != nil {
				t.Fatal(err)
			}
			pretty.WriteByte('\n')

			path := filepath.Join("testdata", "daemon", fx.golden)
			if *updateDaemon {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, pretty.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("%v (run: go test -run TestDaemonResponseGoldens -update-daemon)", err)
			}
			if !bytes.Equal(pretty.Bytes(), want) {
				t.Errorf("served body diverged from %s\n got: %s\nwant: %s", path, &pretty, want)
			}
		})
	}
}

// TestDaemonResponseMatchesDirectCompile cross-checks the served body
// against a direct in-process compilation: the utilization report must
// equal Schedule.InterconnectUtilization(), the pass counters must
// equal Schedule.Passes, and both must survive a JSON round-trip.
func TestDaemonResponseMatchesDirectCompile(t *testing.T) {
	for _, fx := range daemonFixtures {
		t.Run(fx.golden, func(t *testing.T) {
			body := serveCompile(t, fx.req)
			var cr daemon.CompileResponse
			if err := json.Unmarshal(body, &cr); err != nil {
				t.Fatal(err)
			}

			var k *Kernel
			if fx.kernel != nil {
				k = fx.kernel()
			} else {
				var err error
				if k, err = ParseKernel(fx.req.Source); err != nil {
					t.Fatal(err)
				}
			}
			s, err := Compile(k, fx.mach, Options{})
			if err != nil {
				t.Fatal(err)
			}

			// Utilization: the served report is the direct report.
			direct, err := json.Marshal(s.InterconnectUtilization())
			if err != nil {
				t.Fatal(err)
			}
			served, err := json.Marshal(cr.Utilization)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(served, direct) {
				t.Errorf("served utilization diverged from InterconnectUtilization()\n got: %s\nwant: %s", served, direct)
			}

			// Passes: same passes, same deterministic counters.
			if len(cr.Passes) != len(s.Passes) {
				t.Fatalf("served %d passes, direct compile ran %d", len(cr.Passes), len(s.Passes))
			}
			for i, p := range s.Passes {
				got := cr.Passes[i]
				if got.Name != p.Name || got.Runs != p.Runs || got.Steps != p.Steps || got.Fails != p.Fails {
					t.Errorf("pass %d: served %+v, direct %+v", i, got, p)
				}
			}

			// Body facts match the direct schedule.
			if cr.II != s.II || cr.Preamble != s.PreambleLen || cr.Schedule != s.Dump() {
				t.Errorf("served summary (ii %d preamble %d) diverged from direct compile (ii %d preamble %d)",
					cr.II, cr.Preamble, s.II, s.PreambleLen)
			}

			// Round-trip: unmarshal → re-marshal reproduces the served
			// body byte-for-byte (the server marshals the same struct).
			again, err := json.Marshal(cr)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(again, bytes.TrimRight(body, "\n")) {
				t.Errorf("re-marshalled response differs from served body\n got: %s\nwant: %s", again, body)
			}

			// The utilization report also round-trips through its own
			// JSON: decode the served report and compare structurally.
			var rt core.UtilizationReport
			if err := json.Unmarshal(served, &rt); err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(&rt, s.InterconnectUtilization()) {
				t.Error("utilization report does not survive a JSON round-trip")
			}
		})
	}
}

// TestDaemonGoldenFixturesExist guards against the goldens being
// deleted but the update flag masking it.
func TestDaemonGoldenFixturesExist(t *testing.T) {
	if *updateDaemon {
		t.Skip("regenerating")
	}
	for _, fx := range daemonFixtures {
		if _, err := os.Stat(filepath.Join("testdata", "daemon", fx.golden)); err != nil {
			t.Errorf("missing golden: %v", err)
		}
	}
}
