package commsched

import (
	"context"
	"fmt"
	"testing"
	"time"
)

// The benchmark harness regenerates every evaluation artifact of the
// paper; each benchmark corresponds to one table or figure and reports
// the reproduced quantity through b.ReportMetric in addition to timing
// the machinery that computes it.
//
// Run everything with:
//
//	go test -bench . -benchmem
//
// The Fig. 28/29 benchmarks schedule the whole Table 1 suite on all
// four architectures and take a few minutes per iteration.

// BenchmarkFig7_MotivatingExample times scheduling the §2 code fragment
// on the Fig. 5 shared-interconnect machine and reports the schedule
// length of the five-operation fragment (the paper's Fig. 7 fits it in
// three cycles) and the copies inserted.
func BenchmarkFig7_MotivatingExample(b *testing.B) {
	m := Fig5Machine()
	k := MotivatingKernel()
	var s *Schedule
	for i := 0; i < b.N; i++ {
		var err error
		s, err = Compile(k, m, Options{})
		if err != nil {
			b.Fatal(err)
		}
	}
	frag := 0
	for i := 0; i < 5; i++ {
		if c := s.Assignments[i].Cycle + 1; c > frag {
			frag = c
		}
	}
	b.ReportMetric(float64(frag), "fragment-cycles")
	b.ReportMetric(float64(len(s.Ops)-len(k.Ops)), "copies")
}

// benchCost reports one architecture's normalized cost bars (Figs.
// 25–27) while timing the model.
func benchCost(b *testing.B, m *Machine) {
	b.Helper()
	p := DefaultCostParams()
	base := AnalyzeCost(Central(), p)
	var c Cost
	for i := 0; i < b.N; i++ {
		c = AnalyzeCost(m, p)
	}
	b.ReportMetric(c.Area/base.Area, "rel-area")
	b.ReportMetric(c.Power/base.Power, "rel-power")
	b.ReportMetric(c.Delay/base.Delay, "rel-delay")
}

// BenchmarkFig25_CentralCost reproduces the Fig. 25 cost bars.
func BenchmarkFig25_CentralCost(b *testing.B) { benchCost(b, Central()) }

// BenchmarkFig26_ClusteredCost reproduces the Fig. 26 cost bars (four
// clusters; the two-cluster variant appears in the -fig 26 tool
// output).
func BenchmarkFig26_ClusteredCost(b *testing.B) { benchCost(b, Clustered4()) }

// BenchmarkFig27_DistributedCost reproduces the Fig. 27 cost bars —
// the paper's 9 % area / 6 % power / 37 % delay headline.
func BenchmarkFig27_DistributedCost(b *testing.B) { benchCost(b, Distributed()) }

// BenchmarkTable1_KernelLowering times taking the whole Table 1 suite
// from kernel-language source to IR ("parse") and on through
// communication scheduling on the central baseline architecture
// ("schedule-central"). The schedule-central allocation figures are the
// tracked hot-path metric: candidate lists come interned from the
// machine routing index and the solver scratch is reused, so allocs/op
// here moves only when the scheduler's allocation discipline does.
func BenchmarkTable1_KernelLowering(b *testing.B) {
	specs := Kernels()
	b.Run("parse", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, s := range specs {
				if _, err := ParseKernel(s.Source); err != nil {
					b.Fatal(err)
				}
			}
		}
		b.ReportMetric(float64(len(specs)), "kernels")
	})
	b.Run("schedule-central", func(b *testing.B) {
		b.ReportAllocs()
		kernels := make([]*Kernel, len(specs))
		for i, s := range specs {
			k, err := s.Kernel()
			if err != nil {
				b.Fatal(err)
			}
			kernels[i] = k
		}
		m := Central()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, k := range kernels {
				if _, err := Compile(k, m, Options{}); err != nil {
					b.Fatal(err)
				}
			}
		}
		b.ReportMetric(float64(len(kernels)), "kernels")
	})
}

// BenchmarkFig28_KernelSpeedup schedules every Table 1 kernel on one
// architecture per sub-benchmark and reports the per-kernel speedup
// data of Fig. 28 as the geometric-mean metric (per-kernel rows print
// via cmd/paperfigs -fig 28).
func BenchmarkFig28_KernelSpeedup(b *testing.B) {
	for _, arch := range []func() *Machine{Central, Clustered2, Clustered4, Distributed} {
		m := arch()
		b.Run(m.Name, func(b *testing.B) {
			var res *SuiteResult
			for i := 0; i < b.N; i++ {
				var err error
				res, err = Evaluate(EvalConfig{Archs: []*Machine{Central(), m}})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(res.Overall(m.Name), "overall-speedup")
			min, _ := res.MinSpeedup(m.Name)
			b.ReportMetric(min, "min-speedup")
		})
	}
}

// BenchmarkFig29_OverallSpeedup runs the full four-architecture
// evaluation and reports the Fig. 29 overall speedups.
func BenchmarkFig29_OverallSpeedup(b *testing.B) {
	var res *SuiteResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = Evaluate(EvalConfig{})
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, a := range res.Archs {
		b.ReportMetric(res.Overall(a), fmt.Sprintf("speedup-%s", a))
	}
}

// BenchmarkScaling48 reproduces the §8 projection: distributed vs
// four-cluster cost at 48 units (paper: 12 % area, 9 % power).
func BenchmarkScaling48(b *testing.B) {
	p := DefaultCostParams()
	var ra, rp float64
	for i := 0; i < b.N; i++ {
		cl := AnalyzeCost(ScaledClustered(48, 4), p)
		d := AnalyzeCost(ScaledDistributed(48), p)
		ra, rp = d.Area/cl.Area, d.Power/cl.Power
	}
	b.ReportMetric(ra, "rel-area-vs-cl4")
	b.ReportMetric(rp, "rel-power-vs-cl4")
}

// ablationKernels is the subset used by the §4.6 ablation benchmarks.
func ablationKernels() []*KernelSpec {
	return []*KernelSpec{
		KernelByName("DCT"), KernelByName("FFT"), KernelByName("Block Warp"),
	}
}

// BenchmarkAblationCycleOrder compares the paper's operation-order
// scheduling against cycle-order scheduling (§4.6) on the distributed
// machine.
func BenchmarkAblationCycleOrder(b *testing.B) {
	for _, cfg := range []struct {
		name string
		opts Options
	}{
		{"operation-order", Options{}},
		{"cycle-order", Options{CycleOrder: true}},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			var res *SuiteResult
			for i := 0; i < b.N; i++ {
				var err error
				res, err = Evaluate(EvalConfig{
					Archs:   []*Machine{Central(), Distributed()},
					Kernels: ablationKernels(),
					Options: cfg.opts,
				})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(res.Overall("distributed"), "overall-speedup")
		})
	}
}

// BenchmarkAblationCostHeuristic compares scheduling with and without
// the equation-1 communication-cost unit ordering (§4.6) on the
// clustered machine, where unit choice decides copy counts.
func BenchmarkAblationCostHeuristic(b *testing.B) {
	for _, cfg := range []struct {
		name string
		opts Options
	}{
		{"with-heuristic", Options{}},
		{"without-heuristic", Options{NoCostHeuristic: true}},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			var res *SuiteResult
			for i := 0; i < b.N; i++ {
				var err error
				res, err = Evaluate(EvalConfig{
					Archs:   []*Machine{Central(), Clustered4()},
					Kernels: ablationKernels(),
					Options: cfg.opts,
				})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(res.Overall("clustered4"), "overall-speedup")
		})
	}
}

// BenchmarkPortfolio races the ablation portfolio against the
// sequential scheduler on the mid-size DCT kernel over all four paper
// architectures. Each architecture gets a sequential baseline plus
// portfolio runs at 1 and 4 workers; compare ns/op across the
// sub-benchmarks for the wall-clock speedup and the II metric for
// schedule quality (the portfolio reaches II=8 on the distributed
// machine where the sequential base settles for 10). On a single-core
// host the 4-worker run still wins wherever cancellation prunes the
// higher intervals the sequential search would have visited.
func BenchmarkPortfolio(b *testing.B) {
	spec := KernelByName("DCT")
	k, err := spec.Kernel()
	if err != nil {
		b.Fatal(err)
	}
	for _, arch := range []func() *Machine{Central, Clustered2, Clustered4, Distributed} {
		m := arch()
		b.Run(m.Name+"/sequential", func(b *testing.B) {
			var s *Schedule
			for i := 0; i < b.N; i++ {
				s, err = Compile(k, m, Options{})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(s.II), "II")
		})
		for _, workers := range []int{1, 4} {
			b.Run(fmt.Sprintf("%s/portfolio-%d", m.Name, workers), func(b *testing.B) {
				var s *Schedule
				var stats *PortfolioStats
				for i := 0; i < b.N; i++ {
					s, stats, err = CompilePortfolio(context.Background(), k, m, Options{}, workers)
					if err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(float64(s.II), "II")
				b.ReportMetric(float64(stats.Cancelled), "cancelled")
				b.ReportMetric(float64(stats.IIsTried), "iis-tried")
			})
		}
	}
}

// BenchmarkPortfolioSpeedup records the wall-clock win: Sort on the
// two-cluster machine is the pair where racing pays off even on a
// single core. The sequential base burns its time failing at intervals
// 64–67 before settling for 68; in the portfolio the cycle-order
// variant proves II=64 quickly and cancels everything above it. The
// speedup metric is sequential wall time over 4-worker portfolio wall
// time (>1 means the portfolio won); on multi-core hosts it grows
// further since the variants genuinely overlap.
func BenchmarkPortfolioSpeedup(b *testing.B) {
	spec := KernelByName("Sort")
	k, err := spec.Kernel()
	if err != nil {
		b.Fatal(err)
	}
	m := Clustered2()
	var seqNS, pfNS int64
	var seqII, pfII int
	for i := 0; i < b.N; i++ {
		t0 := time.Now()
		seq, err := Compile(k, m, Options{})
		if err != nil {
			b.Fatal(err)
		}
		seqNS += time.Since(t0).Nanoseconds()
		seqII = seq.II
		t0 = time.Now()
		pf, _, err := CompilePortfolio(context.Background(), k, m, Options{}, 4)
		if err != nil {
			b.Fatal(err)
		}
		pfNS += time.Since(t0).Nanoseconds()
		pfII = pf.II
	}
	b.ReportMetric(float64(seqNS)/float64(pfNS), "speedup")
	b.ReportMetric(float64(seqII), "sequential-II")
	b.ReportMetric(float64(pfII), "portfolio-II")
}

// BenchmarkSimulator times the cycle-accurate simulator on the FFT
// kernel's distributed schedule and reports simulated cycles per run.
func BenchmarkSimulator(b *testing.B) {
	spec := KernelByName("FFT")
	k, err := spec.Kernel()
	if err != nil {
		b.Fatal(err)
	}
	s, err := Compile(k, Distributed(), Options{})
	if err != nil {
		b.Fatal(err)
	}
	mem := spec.Init()
	b.ResetTimer()
	var cycles int
	for i := 0; i < b.N; i++ {
		res, err := Simulate(s, SimConfig{InitMem: mem})
		if err != nil {
			b.Fatal(err)
		}
		cycles = res.Cycles
	}
	b.ReportMetric(float64(cycles), "sim-cycles")
}

// BenchmarkScheduler times raw scheduling throughput per architecture
// on the mid-size DCT kernel.
func BenchmarkScheduler(b *testing.B) {
	spec := KernelByName("DCT")
	k, err := spec.Kernel()
	if err != nil {
		b.Fatal(err)
	}
	for _, arch := range []func() *Machine{Central, Clustered4, Distributed} {
		m := arch()
		b.Run(m.Name, func(b *testing.B) {
			var s *Schedule
			for i := 0; i < b.N; i++ {
				s, err = Compile(k, m, Options{})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(s.II), "II")
		})
	}
}

// BenchmarkSchedulerThroughput reports end-to-end scheduling
// throughput — whole compilations per second — for the mid-size DCT
// kernel on the distributed architecture, the configuration the paper's
// evaluation centers on. BENCH_sched.json tracks this number (and the
// allocs/op reported by -benchmem) across the perf trajectory.
func BenchmarkSchedulerThroughput(b *testing.B) {
	spec := KernelByName("DCT")
	k, err := spec.Kernel()
	if err != nil {
		b.Fatal(err)
	}
	m := Distributed()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Compile(k, m, Options{}); err != nil {
			b.Fatal(err)
		}
	}
	if sec := b.Elapsed().Seconds(); sec > 0 {
		b.ReportMetric(float64(b.N)/sec, "compiles/s")
	}
}

// BenchmarkCompileTracing quantifies the observability layer's cost on
// the same DCT/distributed workload BenchmarkScheduler times, so the
// "disabled" sub-benchmark is directly comparable against the pre-
// tracing scheduler baseline: with a nil tracer the emit helpers must
// be free (their no-op path is also pinned allocation-free by
// core.TestDisabledTracerAllocatesNothing), and "recording" bounds the
// full cost of capturing every decision point.
func BenchmarkCompileTracing(b *testing.B) {
	spec := KernelByName("DCT")
	k, err := spec.Kernel()
	if err != nil {
		b.Fatal(err)
	}
	m := Distributed()
	b.Run("disabled", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := Compile(k, m, Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("recording", func(b *testing.B) {
		var events int
		for i := 0; i < b.N; i++ {
			rec := NewTraceRecorder()
			if _, err := Compile(k, m, Options{Tracer: rec}); err != nil {
				b.Fatal(err)
			}
			events = rec.Len()
		}
		b.ReportMetric(float64(events), "events")
	})
}
